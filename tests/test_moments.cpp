// Tests for admittance moments, the Eq-3 rational fit, pi synthesis and AWE.
#include "moments/admittance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "moments/awe.h"
#include "moments/pimodel.h"
#include "moments/rational.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::moments {
namespace {

using namespace rlceff::units;
using rlceff::testing::expect_rel_near;

TEST(Admittance, FirstMomentIsTotalCapacitance) {
  const util::Series y = ladder_admittance(100.0, 5 * nh, 1 * pf, 30 * ff, 50);
  EXPECT_NEAR(0.0, y[0], 1e-20);
  expect_rel_near(1.03e-12, y[1], 1e-9);
}

TEST(Admittance, DistributedFirstMomentIsTotalCapacitance) {
  const util::Series y = distributed_line_admittance(100.0, 5 * nh, 1 * pf, 30 * ff);
  expect_rel_near(1.03e-12, y[1], 1e-9);
}

TEST(Admittance, SecondMomentOfOpenRcLine) {
  // For a distributed RC line (no load), m2 = -R C^2 / 3 is the classic
  // Elmore-like result from expanding sqrt-tanh.
  const double r = 100.0;
  const double c = 1 * pf;
  const util::Series y = distributed_line_admittance(r, 0.0, c, 0.0);
  expect_rel_near(-r * c * c / 3.0, y[2], 1e-9);
}

TEST(Admittance, LadderConvergesToDistributed) {
  // Pi-section ladders must converge to the exact distributed moments with
  // O(1/N^2) error.
  const double r = 72.44;
  const double l = 5.14 * nh;
  const double c = 1.10 * pf;
  const util::Series exact = distributed_line_admittance(r, l, c, 20 * ff);

  double prev_err = 1e300;
  for (std::size_t segments : {4, 8, 16, 32, 64}) {
    const util::Series approx = ladder_admittance(r, l, c, 20 * ff, segments);
    double err = 0.0;
    for (std::size_t k = 1; k <= 5; ++k) {
      err = std::max(err, std::abs((approx[k] - exact[k]) / exact[k]));
    }
    EXPECT_LT(err, prev_err) << segments << " segments";
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3);
}

TEST(Admittance, TreeChainMatchesSegmentedLine) {
  // A chain of RlcBranch nodes is an L-section ladder; compare against the
  // same network expressed with nested children.
  RlcBranch leaf{10.0, 0.5 * nh, 0.2 * pf, {}};
  RlcBranch mid{10.0, 0.5 * nh, 0.2 * pf, {leaf}};
  RlcBranch root{10.0, 0.5 * nh, 0.2 * pf, {mid}};
  const util::Series y = tree_admittance(root);
  expect_rel_near(0.6e-12, y[1], 1e-9);  // total C
  // Driving-point m2 = -sum_{i,j} C_i C_j R_shared(i,j) (unlike the transfer
  // function's Elmore sum, both capacitor indices appear).  For the chain
  // with R_path = 10/20/30 ohm the shared-resistance double sum is 140.
  expect_rel_near(-(0.2e-12 * 0.2e-12) * 140.0, y[2], 1e-9);
}

TEST(Admittance, BranchedTreeSumsChildren) {
  RlcBranch left{20.0, 0.0, 0.3 * pf, {}};
  RlcBranch right{40.0, 0.0, 0.5 * pf, {}};
  RlcBranch root{10.0, 0.0, 0.1 * pf, {left, right}};
  const util::Series y = tree_admittance(root);
  expect_rel_near(0.9e-12, y[1], 1e-9);
  // m2 double sum with R_shared: (0,0)=10, (0,L)=(0,R)=(L,R)=10, (L,L)=30,
  // (R,R)=50 -> sum C_i C_j R_shared = 19.9e-24 ohm*F^2.
  expect_rel_near(-19.9e-24, y[2], 1e-9);
}

TEST(Rational, ReproducesMomentsOfPaperCase) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const util::Series y =
      distributed_line_admittance(w.resistance, w.inductance, w.capacitance, 20 * ff);
  const RationalAdmittance fit(y);
  const util::Series back = fit.to_series(6);
  for (std::size_t k = 1; k <= 5; ++k) {
    expect_rel_near(y[k], back[k], 1e-9);
  }
  expect_rel_near(w.capacitance + 20 * ff, fit.total_capacitance(), 1e-9);
}

// The Eq-3 fit must be stable (poles in the open left half-plane) for every
// printed wire geometry across realistic receiver loads.
class RationalStability : public ::testing::TestWithParam<tech::PaperWireCase> {};

TEST_P(RationalStability, PolesInLeftHalfPlane) {
  const auto& c = GetParam();
  for (double load : {0.0, 20 * ff, 50 * ff}) {
    const util::Series y = distributed_line_admittance(
        c.parasitics.resistance, c.parasitics.inductance, c.parasitics.capacitance,
        load);
    const RationalAdmittance fit(y);
    ASSERT_EQ(2, fit.pole_count());
    for (int i = 0; i < 2; ++i) {
      EXPECT_LT(fit.poles()[static_cast<std::size_t>(i)].real(), 0.0)
          << "load " << load;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSixteenCases, RationalStability,
                         ::testing::ValuesIn(tech::paper_wire_cases().begin(),
                                             tech::paper_wire_cases().end()));

TEST(Rational, InductiveLinesHaveComplexPoles) {
  // The strongly inductive 5 mm wide line yields an underdamped fit — the
  // paper's Eq 5/7 branch must actually occur in practice.
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 2.5);
  const util::Series y =
      distributed_line_admittance(w.resistance, w.inductance, w.capacitance, 20 * ff);
  const RationalAdmittance fit(y);
  EXPECT_TRUE(fit.complex_poles());
}

TEST(Rational, PureCapacitorDegeneratesGracefully) {
  util::Series y(8);
  y[1] = 1 * pf;
  const RationalAdmittance fit(y);
  EXPECT_EQ(0, fit.pole_count());
  expect_rel_near(1 * pf, fit.total_capacitance(), 1e-12);
  EXPECT_DOUBLE_EQ(0.0, fit.a2());
}

TEST(Rational, SeriesRcIsFitExactly) {
  // Y = sC/(1 + sRC): moments m_k = C (-RC)^{k-1}.
  const double r = 50.0;
  const double c = 1 * pf;
  util::Series y(8);
  double m = c;
  for (std::size_t k = 1; k < 8; ++k) {
    y[k] = m;
    m *= -r * c;
  }
  const RationalAdmittance fit(y);
  expect_rel_near(c, fit.a1(), 1e-9);
  // One effective pole at -1/RC: b2 ~ 0 or the quadratic degenerates to it.
  const auto poles = fit.poles();
  bool found = false;
  for (int i = 0; i < fit.pole_count(); ++i) {
    if (std::abs(poles[static_cast<std::size_t>(i)] - util::Complex(-1.0 / (r * c), 0.0)) <
        0.01 / (r * c)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Rational, RejectsDcPath) {
  util::Series y(8);
  y[0] = 1.0;  // DC conductance -> not a valid capacitive load
  y[1] = 1 * pf;
  EXPECT_THROW(RationalAdmittance{y}, Error);
}

TEST(PiModel, MatchesKnownRcNetwork) {
  // Build moments of an actual pi network and recover its elements.
  const double c1 = 0.3 * pf;
  const double r = 40.0;
  const double c2 = 0.7 * pf;
  util::Series y(8);
  // Y = s c1 + s c2 / (1 + s r c2): m1 = c1 + c2, m_k = c2 (-r c2)^{k-1}.
  y[1] = c1 + c2;
  double m = c2 * (-r * c2);
  for (std::size_t k = 2; k < 8; ++k) {
    y[k] = m;
    m *= -r * c2;
  }
  const PiModel pi = synthesize_pi(y);
  EXPECT_TRUE(pi.realizable());
  expect_rel_near(c1, pi.c_near, 1e-9);
  expect_rel_near(r, pi.resistance, 1e-9);
  expect_rel_near(c2, pi.c_far, 1e-9);
}

TEST(PiModel, RcLineSynthesisIsRealizable) {
  const util::Series y = distributed_line_admittance(100.0, 0.0, 1 * pf, 0.0);
  const PiModel pi = synthesize_pi(y);
  EXPECT_TRUE(pi.realizable());
  expect_rel_near(1 * pf, pi.c_near + pi.c_far, 1e-9);
}

TEST(PiModel, InductiveLineBreaksRealizability) {
  // Kashyap-Krauter's observation (ref [6]): with significant inductance the
  // three-moment pi model stops being realizable.
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 2.5);
  const util::Series y =
      distributed_line_admittance(w.resistance, w.inductance, w.capacitance, 0.0);
  const PiModel pi = synthesize_pi(y);
  EXPECT_FALSE(pi.realizable());
}

TEST(Awe, TransferMomentsStartAtUnityDc) {
  const util::Series h = ladder_transfer(100.0, 5 * nh, 1 * pf, 20 * ff, 50);
  EXPECT_NEAR(1.0, h[0], 1e-12);
  // First transfer moment is minus the Elmore delay: negative.
  EXPECT_LT(h[1], 0.0);
}

TEST(Awe, LadderTransferConvergesToDistributed) {
  const util::Series exact = distributed_transfer(100.0, 5 * nh, 1 * pf, 20 * ff);
  const util::Series approx = ladder_transfer(100.0, 5 * nh, 1 * pf, 20 * ff, 64);
  for (std::size_t k = 0; k <= 5; ++k) {
    EXPECT_NEAR(exact[k], approx[k], 5e-3 * std::abs(exact[k]) + 1e-40) << "k=" << k;
  }
}

TEST(Awe, RcLineStepResponseMatchesElmoreScale) {
  // Reduced model of an RC line: stable, DC gain 1, and the unit ramp
  // response approaches t - Elmore as t grows.
  const double r = 200.0;
  const double c = 1 * pf;
  const util::Series h = distributed_transfer(r, 0.0, c, 0.0);
  const AweModel model = AweModel::make(h, 3);
  EXPECT_NEAR(1.0, model.dc_gain(), 1e-9);
  const double elmore = -h[1];  // = RC/2 for the open-ended line
  expect_rel_near(r * c / 2.0, elmore, 1e-9);
  const double t = 10.0 * r * c;
  expect_rel_near(t - elmore, model.unit_ramp_response(t), 1e-6);
}

TEST(Awe, ResponseToSaturatedRampIsMonotoneAndSettles) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(3.0, 0.8);
  const util::Series h =
      distributed_transfer(w.resistance, w.inductance, w.capacitance, 20 * ff);
  const AweModel model = AweModel::make(h, 3);
  const wave::Pwl input = wave::ramp(0.0, 100 * ps, 0.0, 1.8);
  const wave::Waveform out = model.response(input, 2 * ns, 1 * ps);
  EXPECT_NEAR(1.8, out.value_at(2 * ns), 0.02);
  EXPECT_GT(out.value_at(500 * ps), 1.5);
}

TEST(Awe, ThrowsWithoutEnoughMoments) {
  util::Series h(4);
  h[0] = 1.0;
  EXPECT_THROW(AweModel::make(h, 3), Error);
}

}  // namespace
}  // namespace rlceff::moments
