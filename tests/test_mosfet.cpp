// Unit tests for the alpha-power-law MOSFET model.
#include "circuit/mosfet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.h"

namespace rlceff::ckt {
namespace {

using rlceff::testing::expect_rel_near;

MosfetParams nominal() {
  MosfetParams p;
  p.vth = 0.45;
  p.alpha = 1.3;
  p.k_sat = 440.0;
  p.kv = 0.8;
  p.lambda = 0.06;
  return p;
}

TEST(Mosfet, OffBelowThreshold) {
  const auto e = eval_nmos(nominal(), 1e-6, 0.3, 1.0);
  EXPECT_DOUBLE_EQ(0.0, e.id);
  EXPECT_DOUBLE_EQ(0.0, e.gm);
  EXPECT_DOUBLE_EQ(0.0, e.gds);
}

TEST(Mosfet, SaturationCurrentScalesWithWidth) {
  const auto p = nominal();
  const auto e1 = eval_nmos(p, 1e-6, 1.8, 1.8);
  const auto e2 = eval_nmos(p, 3e-6, 1.8, 1.8);
  expect_rel_near(3.0, e2.id / e1.id, 1e-12);
}

TEST(Mosfet, SaturationCurrentFollowsAlphaPower) {
  const auto p = nominal();
  const auto ea = eval_nmos(p, 1e-6, 1.0, 1.8);
  const auto eb = eval_nmos(p, 1e-6, 1.8, 1.8);
  // Id ~ (Vgs - Vth)^alpha * (1 + lambda Vds); same Vds cancels the CLM term.
  const double expect = std::pow((1.8 - 0.45) / (1.0 - 0.45), p.alpha);
  expect_rel_near(expect, eb.id / ea.id, 1e-10);
}

TEST(Mosfet, TriodeCurrentVanishesAtZeroVds) {
  const auto e = eval_nmos(nominal(), 1e-6, 1.8, 0.0);
  EXPECT_DOUBLE_EQ(0.0, e.id);
  EXPECT_GT(e.gds, 0.0);  // finite on-conductance
}

TEST(Mosfet, ContinuousAcrossSaturationBoundary) {
  const auto p = nominal();
  const double vgs = 1.8;
  const double vdsat = p.kv * std::pow(vgs - p.vth, 0.5 * p.alpha);
  const auto lo = eval_nmos(p, 1e-6, vgs, vdsat - 1e-9);
  const auto hi = eval_nmos(p, 1e-6, vgs, vdsat + 1e-9);
  expect_rel_near(lo.id, hi.id, 1e-6);
  expect_rel_near(lo.gm, hi.gm, 1e-4);
  EXPECT_NEAR(lo.gds, hi.gds, 1e-4 * std::abs(lo.gds) + 1e-9);
}

// Analytic gm/gds must match numerical differentiation over both regions.
class MosfetDerivatives : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(MosfetDerivatives, MatchNumericalDifferentiation) {
  const auto p = nominal();
  const double w = 1e-6;
  const auto [vgs, vds] = GetParam();
  const double h = 1e-7;
  const auto e = eval_nmos(p, w, vgs, vds);
  const double gm_num =
      (eval_nmos(p, w, vgs + h, vds).id - eval_nmos(p, w, vgs - h, vds).id) / (2.0 * h);
  const double gds_num =
      (eval_nmos(p, w, vgs, vds + h).id - eval_nmos(p, w, vgs, vds - h).id) / (2.0 * h);
  EXPECT_NEAR(gm_num, e.gm, 1e-5 * std::max(1e-6, std::abs(gm_num)));
  EXPECT_NEAR(gds_num, e.gds, 1e-5 * std::max(1e-6, std::abs(gds_num)));
}

INSTANTIATE_TEST_SUITE_P(
    BiasGrid, MosfetDerivatives,
    ::testing::Values(std::pair{0.8, 0.1}, std::pair{0.8, 0.5}, std::pair{0.8, 1.5},
                      std::pair{1.2, 0.05}, std::pair{1.2, 0.9}, std::pair{1.8, 0.2},
                      std::pair{1.8, 0.7}, std::pair{1.8, 1.6}, std::pair{0.6, 0.3},
                      std::pair{1.5, 1.1}));

TEST(Mosfet, ReverseConductionBySymmetry) {
  // With vds < 0 the device conducts backwards: current equals the forward
  // evaluation with the terminals relabeled, negated.
  const auto p = nominal();
  const double w = 1e-6;
  const double vg = 1.8;
  // Forward reference: source at 0, drain at 0.5 -> vgs = 1.8, vds = 0.5.
  const auto fwd = eval_nmos(p, w, vg, 0.5);
  // Reverse: drain terminal at 0, source terminal at 0.5 (so vds = -0.5 and
  // vgs measured from the source terminal = 1.3).
  const auto rev = eval_nmos(p, w, vg - 0.5, -0.5);
  expect_rel_near(-fwd.id, rev.id, 1e-12);
}

TEST(Mosfet, ReverseDerivativesMatchNumerical) {
  const auto p = nominal();
  const double w = 1e-6;
  const double vgs = 1.0;
  const double vds = -0.7;
  const double h = 1e-7;
  const auto e = eval_nmos(p, w, vgs, vds);
  const double gm_num =
      (eval_nmos(p, w, vgs + h, vds).id - eval_nmos(p, w, vgs - h, vds).id) / (2.0 * h);
  const double gds_num =
      (eval_nmos(p, w, vgs, vds + h).id - eval_nmos(p, w, vgs, vds - h).id) / (2.0 * h);
  EXPECT_NEAR(gm_num, e.gm, 1e-4 * std::abs(gm_num) + 1e-9);
  EXPECT_NEAR(gds_num, e.gds, 1e-4 * std::abs(gds_num) + 1e-9);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const auto p = nominal();
  const double w = 1e-6;
  // P device conducting: vgs = -1.8, vds = -0.9.
  const auto pe = eval_pmos(p, w, -1.8, -0.9);
  const auto ne = eval_nmos(p, w, 1.8, 0.9);
  expect_rel_near(-ne.id, pe.id, 1e-12);
  EXPECT_LT(pe.id, 0.0);  // current flows source -> drain
  expect_rel_near(ne.gm, pe.gm, 1e-12);
  expect_rel_near(ne.gds, pe.gds, 1e-12);
}

TEST(Mosfet, PmosOffWhenGateHigh) {
  const auto e = eval_pmos(nominal(), 1e-6, 0.0, -1.8);
  EXPECT_DOUBLE_EQ(0.0, e.id);
}

TEST(Mosfet, MonotonicInVgsAndVds) {
  const auto p = nominal();
  double prev = -1.0;
  for (double vgs = 0.5; vgs <= 1.8; vgs += 0.1) {
    const double id = eval_nmos(p, 1e-6, vgs, 1.8).id;
    EXPECT_GE(id, prev);
    prev = id;
  }
  prev = -1.0;
  for (double vds = 0.0; vds <= 1.8; vds += 0.1) {
    const double id = eval_nmos(p, 1e-6, 1.8, vds).id;
    EXPECT_GE(id, prev);
    prev = id;
  }
}

}  // namespace
}  // namespace rlceff::ckt
