// Tests for the net::Net interconnect IR: construction-time validation, the
// deck compiler's equivalence with the legacy ladder/tree decks, moment
// equivalence, dominant-path metrics, and the experiment harness running a
// heterogeneous (multi-section) topology end to end.
#include "net/net.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <functional>
#include <string>

#include "circuit/builders.h"
#include "core/experiment.h"
#include "moments/admittance.h"
#include "sim/transient.h"
#include "tech/testbench.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::net {
namespace {

using namespace rlceff::units;
using moments::RlcBranch;
using rlceff::testing::expect_rel_near;

void expect_series_rel_near(const util::Series& a, const util::Series& b,
                            double rel_tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    expect_rel_near(a[k], b[k], rel_tol);
  }
}

void expect_waveforms_match(const wave::Waveform& a, const wave::Waveform& b,
                            double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_DOUBLE_EQ(a.time(k), b.time(k)) << "sample " << k;
    EXPECT_NEAR(a.value(k), b.value(k), tol) << "t=" << a.time(k);
  }
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

// ---- construction-time validation ---------------------------------------

TEST(NetValidation, RejectsNonPhysicalUniformLines) {
  EXPECT_THROW(Net::uniform_line(-1.0, 1 * nh, 1 * pf, 20 * ff), Error);
  EXPECT_THROW(Net::uniform_line(0.0, 1 * nh, 1 * pf, 20 * ff), Error);
  EXPECT_THROW(Net::uniform_line(50.0, 1 * nh, 0.0, 20 * ff), Error);
  EXPECT_THROW(Net::uniform_line(50.0, 1 * nh, -1 * pf, 20 * ff), Error);
  EXPECT_THROW(Net::uniform_line(50.0, -1 * nh, 1 * pf, 20 * ff), Error);
  EXPECT_THROW(Net::uniform_line(50.0, 1 * nh, 1 * pf, -1 * ff), Error);
  EXPECT_NO_THROW(Net::uniform_line(50.0, 0.0, 1 * pf, 0.0));
}

TEST(NetValidation, ErrorsNameTheOffendingElement) {
  const std::string msg = error_message(
      [] { (void)Net::uniform_line(50.0, 1 * nh, -1 * pf, 20 * ff); });
  EXPECT_NE(std::string::npos, msg.find("section 0 of branch 'root'")) << msg;
  EXPECT_NE(std::string::npos, msg.find("capacitance")) << msg;

  Branch child_bad;
  child_bad.sections.push_back({-2.0, 0.0, 1 * pf, SectionKind::lumped});
  Branch root;
  root.sections.push_back({50.0, 1 * nh, 1 * pf, SectionKind::distributed});
  root.children = {Branch{{{30.0, 0.0, 0.1 * pf, SectionKind::lumped}}, 0.0, "", {}},
                   child_bad};
  const std::string nested = error_message([&root] { (void)Net(root); });
  EXPECT_NE(std::string::npos, nested.find("branch 'root/1'")) << nested;
}

// Pinned alongside the property harness's validation fuzz
// (testkit::check_validation_reporting): a defect two levels deep must name
// its full branch path and its in-branch section index, not a sibling's.
TEST(NetValidation, ErrorsNameDeepBranchPathsAndSectionIndices) {
  Branch leaf_ok{{{30.0, 1 * nh, 0.3 * pf, SectionKind::distributed}}, 10 * ff, "", {}};
  Branch leaf_bad;
  leaf_bad.sections.push_back({25.0, 1 * nh, 0.2 * pf, SectionKind::distributed});
  leaf_bad.sections.push_back({25.0, -1 * nh, 0.2 * pf, SectionKind::distributed});
  Branch mid;
  mid.sections.push_back({40.0, 2 * nh, 0.4 * pf, SectionKind::distributed});
  mid.children = {leaf_ok, leaf_bad};
  Branch root;
  root.sections.push_back({50.0, 1 * nh, 1 * pf, SectionKind::distributed});
  root.children = {leaf_ok, mid};

  const std::string msg = error_message([&root] { (void)Net(root); });
  EXPECT_NE(std::string::npos, msg.find("section 1 of branch 'root/1/1'")) << msg;
  EXPECT_NE(std::string::npos, msg.find("inductance")) << msg;

  // A negative load on the same deep branch names the path too.
  Branch load_bad = root;
  load_bad.children[1].children[1].sections.pop_back();
  load_bad.children[1].children[1].c_load = -1 * ff;
  const std::string load_msg = error_message([&load_bad] { (void)Net(load_bad); });
  EXPECT_NE(std::string::npos, load_msg.find("branch 'root/1/1'")) << load_msg;
  EXPECT_NE(std::string::npos, load_msg.find("load")) << load_msg;
}

TEST(NetValidation, RejectsEmptyAndZeroLengthNets) {
  EXPECT_THROW(Net::multi_section({}, 20 * ff), Error);
  EXPECT_THROW(Net(Branch{}), Error);  // no sections, no children

  Branch zero;
  zero.sections.push_back({0.0, 0.0, 0.0, SectionKind::lumped});
  EXPECT_THROW((void)Net(zero), Error);  // zero-length segment

  // A tree with no capacitance anywhere is rejected as well.
  Branch no_cap;
  no_cap.sections.push_back({10.0, 1 * nh, 0.0, SectionKind::lumped});
  EXPECT_THROW((void)Net(no_cap), Error);

  // Empty child branches would compile to phantom leaves at the junction.
  Branch phantom;
  phantom.sections.push_back({50.0, 1 * nh, 1 * pf, SectionKind::distributed});
  phantom.children = {Branch{}};
  const std::string msg = error_message([&phantom] { (void)Net(phantom); });
  EXPECT_NE(std::string::npos, msg.find("branch 'root/0' is empty")) << msg;
}

TEST(NetValidation, RejectsDuplicateProbeNames) {
  Branch arm{{{30.0, 1 * nh, 0.3 * pf, SectionKind::distributed}}, 10 * ff, "sink", {}};
  Branch root;
  root.sections.push_back({20.0, 0.5 * nh, 0.2 * pf, SectionKind::distributed});
  root.children = {arm, arm};
  const std::string msg = error_message([&root] { (void)Net(root); });
  EXPECT_NE(std::string::npos, msg.find("duplicate probe name 'sink'")) << msg;
}

TEST(NetValidation, EmptyNetAccessorsThrow) {
  Net empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW((void)empty.root(), Error);
  EXPECT_THROW((void)empty.metrics(), Error);
  EXPECT_THROW((void)empty.total_capacitance(), Error);
}

// ---- dominant-path metrics ----------------------------------------------

TEST(NetMetrics, UniformLineMatchesWireParasitics) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const NetMetrics m = tech::line_net(w, 20 * ff).metrics();
  expect_rel_near(w.z0(), m.z0, 1e-12);
  expect_rel_near(w.time_of_flight(), m.time_of_flight, 1e-12);
  expect_rel_near(w.resistance, m.path_resistance, 1e-12);
  expect_rel_near(w.capacitance, m.wire_capacitance, 1e-12);
  expect_rel_near(20 * ff, m.load_capacitance, 1e-12);
  expect_rel_near(20 * ff, m.path_load, 1e-12);
  EXPECT_EQ(0u, m.dominant_leaf);
  expect_rel_near(w.capacitance + 20 * ff, m.total_capacitance(), 1e-12);
}

TEST(NetMetrics, FromTreeMatchesTreeMetrics) {
  RlcBranch short_arm{20.0, 1 * nh, 0.3 * pf, {}};
  RlcBranch long_arm{60.0, 4 * nh, 1.0 * pf, {}};
  RlcBranch trunk{10.0, 0.5 * nh, 0.1 * pf, {short_arm, long_arm}};

  const moments::TreePathMetrics ref = moments::tree_metrics(trunk);
  const NetMetrics m = Net::from_tree(trunk).metrics();
  expect_rel_near(ref.z0, m.z0, 1e-12);
  expect_rel_near(ref.time_of_flight, m.time_of_flight, 1e-12);
  expect_rel_near(ref.path_resistance, m.path_resistance, 1e-12);
  expect_rel_near(ref.total_capacitance, m.total_capacitance(), 1e-12);
  EXPECT_EQ(1u, m.dominant_leaf);  // depth-first: long arm is the second leaf
}

TEST(NetMetrics, MultiSectionAccumulatesAlongTheRoute) {
  const Net route = Net::multi_section(
      {{40.0, 2 * nh, 0.5 * pf, SectionKind::distributed},
       {60.0, 3 * nh, 0.7 * pf, SectionKind::distributed}},
      20 * ff);
  const NetMetrics m = route.metrics();
  expect_rel_near(100.0, m.path_resistance, 1e-12);
  expect_rel_near(std::sqrt(5 * nh * 1.2 * pf), m.time_of_flight, 1e-12);
  expect_rel_near(std::sqrt(5 * nh / (1.2 * pf)), m.z0, 1e-12);
  expect_rel_near(1.2 * pf, m.wire_capacitance, 1e-12);
  expect_rel_near(20 * ff, m.path_load, 1e-12);
}

// ---- moment equivalence --------------------------------------------------

TEST(NetMoments, UniformLineMatchesDistributedExpansion) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const util::Series y_net = moments::net_admittance(tech::line_net(w, 20 * ff));
  const util::Series y_ref = moments::distributed_line_admittance(
      w.resistance, w.inductance, w.capacitance, 20 * ff);
  expect_series_rel_near(y_net, y_ref, 1e-12);
}

TEST(NetMoments, FromTreeMatchesTreeAdmittance) {
  RlcBranch arm_a{30.0, 1.5 * nh, 0.4 * pf, {}};
  RlcBranch arm_b{50.0, 2.5 * nh, 0.8 * pf, {}};
  RlcBranch trunk{15.0, 0.8 * nh, 0.2 * pf, {arm_a, arm_b}};

  const util::Series y_net = moments::net_admittance(Net::from_tree(trunk));
  const util::Series y_ref = moments::tree_admittance(trunk);
  expect_series_rel_near(y_net, y_ref, 1e-12);
}

TEST(NetMoments, UniformLineNetMatchesEquivalentRlcBranchChain) {
  // A uniform-line Net discretized as a lumped chain converges to the same
  // moments; at 60 sections the low-order moments agree to a fraction of a
  // percent (they drive Ceff1/Ceff2, so this pins the IR's two views of one
  // wire together).
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const std::size_t n = 60;
  RlcBranch chain{w.resistance / n, w.inductance / n, w.capacitance / n + 20 * ff, {}};
  for (std::size_t k = 1; k < n; ++k) {
    chain = RlcBranch{w.resistance / n, w.inductance / n, w.capacitance / n, {chain}};
  }
  const util::Series y_line = moments::net_admittance(tech::line_net(w, 20 * ff));
  const util::Series y_chain = moments::net_admittance(Net::from_tree(chain));
  expect_rel_near(y_line[1], y_chain[1], 1e-9);  // total capacitance is exact
  // Higher moments converge as O(1/n) in the section count: a few percent at
  // n = 60.
  for (std::size_t k = 2; k <= 4; ++k) {
    expect_rel_near(y_line[k], y_chain[k], 5e-2);
  }
}

TEST(NetMoments, SectionCascadeOfSubLinesIsExact) {
  // Splitting a uniform line into three exact distributed sub-sections must
  // not change the driving-point expansion (the cascade is algebraically the
  // whole line).
  const tech::WireParasitics w = *tech::find_paper_wire_case(6.0, 2.0);
  const Net whole = tech::line_net(w, 20 * ff);
  const Section third{w.resistance / 3.0, w.inductance / 3.0, w.capacitance / 3.0,
                      SectionKind::distributed};
  const Net split = Net::multi_section({third, third, third}, 20 * ff);
  expect_series_rel_near(moments::net_admittance(whole),
                         moments::net_admittance(split), 1e-9);
}

// ---- deck equivalence ----------------------------------------------------

sim::TransientOptions fast_transient() {
  sim::TransientOptions opt;
  opt.t_stop = 0.6 * ns;
  opt.dt = 0.5 * ps;
  return opt;
}

TEST(NetDeck, UniformLineMatchesLegacyLadderDeck) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const wave::Pwl source({{5 * ps, 0.0}, {55 * ps, 1.8}});
  const std::size_t segments = 40;

  // Legacy deck: explicit ladder plus far-end capacitor.
  ckt::Netlist legacy;
  const ckt::NodeId out = legacy.node("out");
  legacy.add_vsource(out, ckt::ground, source);
  const ckt::LadderNodes line = ckt::append_rlc_ladder(
      legacy, out, w.resistance, w.inductance, w.capacitance, segments);
  legacy.add_capacitor(line.far_end, ckt::ground, 20 * ff);
  const std::array<ckt::NodeId, 2> probes{out, line.far_end};
  const sim::TransientResult ref = sim::simulate(legacy, fast_transient(), probes);

  // IR deck: same net compiled through append_net.
  tech::DeckOptions deck;
  deck.segments = segments;
  deck.t_stop = 0.6 * ns;
  deck.dt = 0.5 * ps;
  const tech::NetSimResult net_sim =
      tech::simulate_source_net(source, tech::line_net(w, 20 * ff), deck);

  ASSERT_EQ(1u, net_sim.leaves.size());
  expect_waveforms_match(net_sim.near_end, ref.at(out), 1e-10);
  expect_waveforms_match(net_sim.leaves[0], ref.at(line.far_end), 1e-10);
}

// Replicates the legacy tree deck construction (testbench build_tree before
// the IR refactor): each branch becomes a ladder, children hang off its far
// end, capacitance-only branches become plain shunts.
ckt::NodeId legacy_tree_branch(ckt::Netlist& nl, ckt::NodeId from,
                               const RlcBranch& branch, std::size_t segments,
                               std::vector<ckt::NodeId>& leaves) {
  ckt::NodeId far = from;
  if (branch.resistance > 0.0 && branch.capacitance > 0.0) {
    far = ckt::append_rlc_ladder(nl, from, branch.resistance, branch.inductance,
                                 branch.capacitance, segments)
              .far_end;
  } else if (branch.capacitance > 0.0) {
    nl.add_capacitor(from, ckt::ground, branch.capacitance);
  }
  if (branch.children.empty()) {
    leaves.push_back(far);
    return far;
  }
  for (const RlcBranch& child : branch.children) {
    legacy_tree_branch(nl, far, child, segments, leaves);
  }
  return far;
}

TEST(NetDeck, FromTreeMatchesLegacyTreeDeck) {
  RlcBranch arm_a{30.0, 1.5 * nh, 0.4 * pf, {}};
  RlcBranch arm_b{50.0, 2.5 * nh, 0.8 * pf, {}};
  RlcBranch cap_only{0.0, 0.0, 0.1 * pf, {}};
  arm_b.children.push_back(cap_only);
  RlcBranch trunk{15.0, 0.8 * nh, 0.2 * pf, {arm_a, arm_b}};
  const wave::Pwl source({{5 * ps, 0.0}, {55 * ps, 1.8}});
  const std::size_t segments = 10;

  ckt::Netlist legacy;
  const ckt::NodeId out = legacy.node("out");
  legacy.add_vsource(out, ckt::ground, source);
  std::vector<ckt::NodeId> leaves;
  legacy_tree_branch(legacy, out, trunk, segments, leaves);
  std::vector<ckt::NodeId> probes{out};
  probes.insert(probes.end(), leaves.begin(), leaves.end());
  const sim::TransientResult ref = sim::simulate(legacy, fast_transient(), probes);

  tech::DeckOptions deck;
  deck.segments = segments;
  deck.t_stop = 0.6 * ns;
  deck.dt = 0.5 * ps;
  const tech::NetSimResult net_sim =
      tech::simulate_source_net(source, Net::from_tree(trunk), deck);

  ASSERT_EQ(leaves.size(), net_sim.leaves.size());
  expect_waveforms_match(net_sim.near_end, ref.at(out), 1e-10);
  for (std::size_t k = 0; k < leaves.size(); ++k) {
    expect_waveforms_match(net_sim.leaves[k], ref.at(leaves[k]), 1e-10);
  }
}

TEST(NetDeck, SeriesOnlyLumpedSectionsAreStamped) {
  // A lumped section with series R/L but no shunt C must still reach the
  // deck (as single lumps), so the simulated reference sees the same
  // impedance moments::net_admittance models.
  Branch root;
  root.sections.push_back({100.0, 2 * nh, 0.0, SectionKind::lumped});
  root.c_load = 1 * pf;
  const Net series_net{root};

  ckt::Netlist nl;
  const ckt::NodeId in = nl.node("in");
  const ckt::NetDeckNodes nodes = ckt::append_net(nl, in, series_net, 10);
  ASSERT_EQ(1u, nodes.leaves.size());
  EXPECT_NE(in, nodes.leaves[0]);  // the load hangs behind the series lumps
  EXPECT_EQ(1u, nl.resistors().size());
  EXPECT_EQ(1u, nl.inductors().size());
  EXPECT_EQ(1u, nl.capacitors().size());

  // And the moments of that net see the series element too (y2 = -R*C^2).
  const util::Series y = moments::net_admittance(series_net);
  expect_rel_near(1 * pf, y[1], 1e-12);
  expect_rel_near(-100.0 * (1 * pf) * (1 * pf), y[2], 1e-12);
}

TEST(NetDeck, NamedProbesResolveAndUnknownThrows) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(3.0, 1.2);
  const wave::Pwl source({{5 * ps, 0.0}, {55 * ps, 1.8}});
  tech::DeckOptions deck;
  deck.segments = 20;
  deck.t_stop = 0.4 * ns;
  deck.dt = 0.5 * ps;
  const tech::NetSimResult r =
      tech::simulate_source_net(source, tech::line_net(w, 20 * ff), deck);
  ASSERT_EQ(1u, r.probes.size());
  expect_waveforms_match(r.probe("far"), r.leaves[0], 0.0);
  EXPECT_THROW((void)r.probe("nonexistent"), Error);
}

// ---- experiment harness on a heterogeneous topology ----------------------

TEST(NetExperiment, MultiSectionRouteRunsEndToEnd) {
  const tech::Technology technology = tech::Technology::cmos180();
  const tech::WireModel wires;
  const std::array<tech::WireGeometry, 3> route{{{1.0 * mm, 2.4 * um},
                                                 {1.0 * mm, 1.6 * um},
                                                 {1.0 * mm, 0.8 * um}}};

  core::ExperimentCase c;
  c.driver_size = 75.0;
  c.input_slew = 100 * ps;
  c.net = tech::route_net(wires, route, 20 * ff);

  core::ExperimentOptions opt;
  opt.deck.segments = 30;
  opt.deck.dt = 1 * ps;
  opt.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
  opt.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf};
  opt.include_one_ramp = false;

  charlib::CellLibrary library;
  const core::ExperimentResult r = core::run_experiment(technology, library, c, opt);

  // The harness must produce coherent timing: the far end lags the near end,
  // and the model tracks the simulated reference on this mildly non-uniform
  // route.
  EXPECT_GT(r.ref_far.delay, r.ref_near.delay);
  EXPECT_LT(std::abs(core::pct_error(r.model_near.delay, r.ref_near.delay)), 30.0);
  EXPECT_LT(std::abs(core::pct_error(r.model_far.delay, r.ref_far.delay)), 30.0);
  EXPECT_TRUE(r.model.ceff1.converged);
}

}  // namespace
}  // namespace rlceff::net
