// Unit tests for quadrature, scalar solvers, and statistics helpers.
#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.h"
#include "util/error.h"
#include "util/integrate.h"
#include "util/solve.h"
#include "util/stats.h"

namespace rlceff::util {
namespace {

using rlceff::testing::expect_rel_near;

TEST(Integrate, PolynomialIsNearExact) {
  const double got = integrate([](double x) { return 3.0 * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(8.0, got, 1e-10);
}

TEST(Integrate, DampedExponential) {
  const double got = integrate([](double x) { return std::exp(-x); }, 0.0, 10.0);
  expect_rel_near(1.0 - std::exp(-10.0), got, 1e-9);
}

TEST(Integrate, OscillatoryDampedCosine) {
  // integral of e^{-t} cos(5t) from 0 to 4: (a cos.. closed form)
  const double a = 1.0;
  const double b = 5.0;
  auto antiderivative = [&](double t) {
    return std::exp(-a * t) * (-a * std::cos(b * t) + b * std::sin(b * t)) /
           (a * a + b * b);
  };
  const double expect = antiderivative(4.0) - antiderivative(0.0);
  const double got = integrate([&](double t) { return std::exp(-t) * std::cos(5.0 * t); },
                               0.0, 4.0);
  expect_rel_near(expect, got, 1e-8);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(0.0, integrate([](double) { return 1.0; }, 1.0, 1.0));
}

TEST(Integrate, TinyTimescaleIntegrand) {
  // Picosecond-scale windows like the Ceff integrals.
  const double tau = 50e-12;
  const double got =
      integrate([&](double t) { return std::exp(-t / tau); }, 0.0, 200e-12);
  expect_rel_near(tau * (1.0 - std::exp(-4.0)), got, 1e-9);
}

TEST(Brent, FindsCosineRoot) {
  const double root = brent([](double x) { return std::cos(x); }, 0.0, 3.0);
  EXPECT_NEAR(M_PI / 2.0, root, 1e-10);
}

TEST(Brent, ThrowsWhenNotBracketed) {
  EXPECT_THROW(brent([](double x) { return 1.0 + x * x; }, -1.0, 1.0), Error);
}

TEST(Brent, EndpointRoot) {
  const double root = brent([](double x) { return x; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(0.0, root);
}

TEST(FixedPoint, ConvergesOnContraction) {
  // x = cos(x) has the Dottie fixed point ~0.739085.
  const auto r = fixed_point([](double x) { return std::cos(x); }, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(0.7390851332151607, r.x, 1e-7);
}

TEST(FixedPoint, DampingStabilizesOscillation) {
  // g(x) = -1.5 x + 2.5 diverges undamped (slope magnitude > 1) but the
  // damped iteration converges to the fixed point x = 1.
  FixedPointOptions opt;
  opt.damping = 0.5;
  opt.max_iter = 200;
  const auto r = fixed_point([](double x) { return -1.5 * x + 2.5; }, 0.0, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(1.0, r.x, 1e-6);
}

TEST(FixedPoint, RespectsClamps) {
  FixedPointOptions opt;
  opt.lower = 0.5;
  opt.upper = 2.0;
  const auto r = fixed_point([](double) { return 10.0; }, 1.0, opt);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(2.0, r.x);
}

TEST(FixedPoint, ReportsNonConvergence) {
  FixedPointOptions opt;
  opt.max_iter = 5;
  const auto r = fixed_point([](double x) { return x + 1.0; }, 0.0, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(5, r.iterations);
}

TEST(Stats, RelativeErrorAndAggregates) {
  EXPECT_NEAR(0.1, relative_error(1.1, 1.0), 1e-12);
  EXPECT_DOUBLE_EQ(-0.5, relative_error(0.5, 1.0));
  EXPECT_THROW(relative_error(1.0, 0.0), Error);

  const std::vector<double> xs{0.02, -0.08, 0.04, -0.12};
  EXPECT_NEAR(-0.035, mean(xs), 1e-12);
  EXPECT_NEAR(0.065, mean_abs(xs), 1e-12);
  EXPECT_NEAR(0.12, max_abs(xs), 1e-12);
  EXPECT_NEAR(0.5, fraction_below(xs, 0.05), 1e-12);
  EXPECT_NEAR(0.75, fraction_below(xs, 0.1), 1e-12);
}

TEST(Stats, EmptySampleThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), Error);
  EXPECT_THROW(mean_abs(empty), Error);
  EXPECT_THROW(fraction_below(empty, 1.0), Error);
  // max_abs used to silently return 0.0 for an empty sample — the one
  // aggregate that produced a vacuous "max error 0" instead of failing like
  // its siblings.  Pinned after the property generator flagged the
  // inconsistency.
  EXPECT_THROW(max_abs(empty), Error);
}

TEST(Stats, DegenerateSingletonAndConstantSamples) {
  const std::vector<double> one{-0.25};
  EXPECT_DOUBLE_EQ(-0.25, mean(one));
  EXPECT_DOUBLE_EQ(0.25, mean_abs(one));
  EXPECT_DOUBLE_EQ(0.25, max_abs(one));
  EXPECT_DOUBLE_EQ(0.0, fraction_below(one, 0.25));  // strictly below
  EXPECT_DOUBLE_EQ(1.0, fraction_below(one, 0.2500001));

  const std::vector<double> zeros{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(0.0, mean(zeros));
  EXPECT_DOUBLE_EQ(0.0, max_abs(zeros));
  EXPECT_DOUBLE_EQ(1.0, fraction_below(zeros, 1e-300));
}

}  // namespace
}  // namespace rlceff::util
