// Unit tests for polynomial roots and fitting.
#include "util/poly.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_helpers.h"
#include "util/error.h"

namespace rlceff::util {
namespace {

using rlceff::testing::expect_rel_near;
using rlceff::testing::uniform;

TEST(QuadraticRoots, DistinctReal) {
  // (x - 2)(x + 5) = x^2 + 3x - 10.
  const auto r = quadratic_roots(1.0, 3.0, -10.0);
  std::array<double, 2> roots{r[0].real(), r[1].real()};
  std::sort(roots.begin(), roots.end());
  EXPECT_NEAR(-5.0, roots[0], 1e-12);
  EXPECT_NEAR(2.0, roots[1], 1e-12);
  EXPECT_DOUBLE_EQ(0.0, r[0].imag());
  EXPECT_DOUBLE_EQ(0.0, r[1].imag());
}

TEST(QuadraticRoots, ComplexPair) {
  // x^2 + 2x + 5: roots -1 +/- 2i.
  const auto r = quadratic_roots(1.0, 2.0, 5.0);
  EXPECT_NEAR(-1.0, r[0].real(), 1e-12);
  EXPECT_NEAR(2.0, std::abs(r[0].imag()), 1e-12);
  EXPECT_NEAR(r[0].real(), r[1].real(), 1e-12);
  EXPECT_NEAR(r[0].imag(), -r[1].imag(), 1e-12);
}

TEST(QuadraticRoots, CancellationResistant) {
  // x^2 - 1e8 x + 1: naive formula destroys the small root.
  const auto r = quadratic_roots(1.0, -1e8, 1.0);
  std::array<double, 2> roots{r[0].real(), r[1].real()};
  std::sort(roots.begin(), roots.end());
  expect_rel_near(1e-8, roots[0], 1e-10);
  expect_rel_near(1e8, roots[1], 1e-12);
}

TEST(QuadraticRoots, ZeroLeadingCoefficientThrows) {
  EXPECT_THROW(quadratic_roots(0.0, 1.0, 1.0), Error);
}

TEST(CubicRoots, ThreeReal) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  const auto r = cubic_roots(1.0, -6.0, 11.0, -6.0);
  std::array<double, 3> roots{r[0].real(), r[1].real(), r[2].real()};
  std::sort(roots.begin(), roots.end());
  EXPECT_NEAR(1.0, roots[0], 1e-9);
  EXPECT_NEAR(2.0, roots[1], 1e-9);
  EXPECT_NEAR(3.0, roots[2], 1e-9);
}

TEST(CubicRoots, OneRealOneComplexPair) {
  // (x + 1)(x^2 + 1): roots -1, +/- i.
  const auto r = cubic_roots(1.0, 1.0, 1.0, 1.0);
  int real_count = 0;
  for (const auto& root : r) {
    const Complex val = polyval(std::array<double, 4>{1.0, 1.0, 1.0, 1.0}, root);
    EXPECT_LT(std::abs(val), 1e-9);
    if (std::abs(root.imag()) < 1e-9) ++real_count;
  }
  EXPECT_EQ(1, real_count);
}

TEST(CubicRoots, RandomPolynomialsSatisfyEquation) {
  for (int trial = 0; trial < 50; ++trial) {
    const double a = uniform(0.5, 2.0);
    const double b = uniform(-3.0, 3.0);
    const double c = uniform(-3.0, 3.0);
    const double d = uniform(-3.0, 3.0);
    const auto roots = cubic_roots(a, b, c, d);
    for (const auto& x : roots) {
      const Complex val = polyval(std::array<double, 4>{d, c, b, a}, x);
      EXPECT_LT(std::abs(val), 1e-7) << "trial " << trial;
    }
  }
}

TEST(Polyval, HornerMatchesDirect) {
  const std::array<double, 4> c{1.0, -2.0, 0.5, 3.0};
  const double x = 1.7;
  const double direct = 1.0 - 2.0 * x + 0.5 * x * x + 3.0 * x * x * x;
  EXPECT_NEAR(direct, polyval(c, x), 1e-12);
}

TEST(Polyfit, RecoversExactPolynomial) {
  // y = 2 - 3x + 0.5 x^2 sampled at 7 points.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 7; ++i) {
    const double x = -1.0 + 0.4 * i;
    xs.push_back(x);
    ys.push_back(2.0 - 3.0 * x + 0.5 * x * x);
  }
  const auto c = polyfit(xs, ys, 2);
  ASSERT_EQ(3u, c.size());
  EXPECT_NEAR(2.0, c[0], 1e-10);
  EXPECT_NEAR(-3.0, c[1], 1e-10);
  EXPECT_NEAR(0.5, c[2], 1e-10);
}

TEST(Polyfit, RejectsUnderdeterminedFit) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{0.0, 1.0};
  EXPECT_THROW(polyfit(xs, ys, 2), Error);
}

}  // namespace
}  // namespace rlceff::util
