// Randomized-topology property harness: proves the whole stack (net -> ckt
// -> sim -> moments -> core -> api) against its own oracles on ~1000 seeded
// instances per run.
//
// Built as its own binary (rlceff_property) with a custom main so it can
// carry harness flags next to the gtest ones:
//
//   --count-scale <pct>   scale every family's instance count (default 100;
//                         env RLCEFF_PROPERTY_SCALE overrides the default)
//   --seed <0xhex|dec>    replay exactly one instance per (filtered) family
//   --threads <n>         sweep pool width (0 = hardware concurrency)
//   --failures-dir <dir>  where replay decks are written (default: failures)
//   --solver <kind>       force a linear-solver backend (auto, dense, banded,
//                         sparse) on every sim-backed oracle deck, so each
//                         backend sees the full randomized topology stream
//   --inject-stamp-bug    fault injection self-test: skew one cached-path
//                         MNA stamp; the equivalence oracles MUST fail
//
// Every instance is derived from (base seed, family, index), so verdicts
// are identical at any thread count, and every failure prints its seed, the
// shrunk generator recipe, a replay deck under --failures-dir, and the
// one-line rerun command.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "sim/sweep.h"
#include "testkit/generate.h"
#include "testkit/mutate.h"
#include "testkit/oracles.h"
#include "testkit/replay.h"
#include "testkit/rng.h"
#include "util/units.h"

namespace rlceff::testkit {
namespace {

using namespace rlceff::units;

struct PropertyConfig {
  std::uint64_t base_seed = 0x20030603ull;  // DAC'03
  int scale_pct = 100;
  unsigned n_threads = 0;
  std::string failures_dir = "failures";
  sim::SolverKind forced_solver = sim::SolverKind::automatic;
  bool inject_stamp_bug = false;
  std::optional<std::uint64_t> replay_seed;
};

PropertyConfig g_config;
std::atomic<std::size_t> g_instances{0};

std::size_t scaled(std::size_t count) {
  return std::max<std::size_t>(
      1, count * static_cast<std::size_t>(g_config.scale_pct) / 100);
}

std::uint64_t family_hash(const std::string& family) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : family) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
  return h;
}

charlib::CharacterizationGrid property_grid() {
  charlib::CharacterizationGrid grid;
  grid.input_slews = {25 * ps, 50 * ps, 100 * ps, 200 * ps, 300 * ps};
  grid.loads = {20 * ff, 50 * ff, 100 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};
  return grid;
}

api::BatchOptions property_batch_options() {
  api::BatchOptions options;
  options.grid = property_grid();
  return options;
}

// One shared engine: the cell menu is characterized once per binary run and
// every model-level family hits warm tables.
api::Engine& shared_engine() {
  static api::Engine* engine = [] {
    auto* e = new api::Engine(tech::Technology::cmos180());
    e->warm_cache({25.0, 50.0, 75.0, 100.0, 150.0, 200.0}, property_grid(),
                  g_config.n_threads);
    return e;
  }();
  return *engine;
}

OracleOptions sim_oracle_options() {
  OracleOptions options;
  options.solver = g_config.forced_solver;
  if (g_config.inject_stamp_bug) options.stamp_skew = 2e-4;
  return options;
}

// Generic shrink loop: keep taking the first smaller recipe that still
// fails, within a fixed re-run budget.  Returns the smallest failing recipe
// together with its failure message (`error` arrives as the original
// recipe's message), so callers never re-run the oracle just to recover the
// text.
template <class Recipe>
std::pair<Recipe, std::string> shrink_recipe(
    Recipe recipe, std::string error,
    const std::function<std::optional<std::string>(const Recipe&)>& failure_of) {
  int budget = 48;
  bool progressed = true;
  while (progressed && budget > 0) {
    progressed = false;
    for (const Recipe& candidate : shrink_candidates(recipe)) {
      if (--budget <= 0) break;
      if (std::optional<std::string> message = failure_of(candidate)) {
        recipe = candidate;
        error = std::move(*message);
        progressed = true;
        break;
      }
    }
  }
  return {std::move(recipe), std::move(error)};
}

// Composes the failure report for one instance: seed, recipe, error, replay
// deck path (written here) and the harness rerun line.
std::string report(const std::string& family, std::uint64_t seed,
                   const std::string& recipe, const std::string& error,
                   const api::Request* replay) {
  std::string out = "seed=" + seed_hex(seed) + " recipe=" + recipe + "\n    error: " + error;
  if (replay != nullptr) {
    try {
      const std::string deck =
          write_failure_deck(g_config.failures_dir, family, seed, *replay);
      out += "\n    replay: rlceff_cli " + deck;
    } catch (const std::exception& e) {
      // std::exception, not just Error: an unwritable failures dir raises
      // std::filesystem_error, and a deck-write problem must never eat the
      // actual oracle failure's recipe and message.
      out += "\n    (replay deck not written: " + std::string(e.what()) + ")";
    }
  }
  out += "\n    rerun: rlceff_property --gtest_filter='PropertySuite.*' --seed=" +
         seed_hex(seed);
  return out;
}

// Sweeps one family: derives per-index seeds, runs instances on the pool
// (deterministic slot order), reports every failure to stderr, and fails the
// gtest once at the end.
void run_family(const std::string& family, std::size_t count,
                std::size_t instances_per_seed,
                const std::function<std::string(std::uint64_t)>& run_one) {
  std::vector<std::uint64_t> seeds;
  if (g_config.replay_seed.has_value()) {
    seeds.push_back(*g_config.replay_seed);
  } else {
    const std::uint64_t fh = family_hash(family);
    seeds.reserve(scaled(count));
    for (std::size_t i = 0; i < scaled(count); ++i) {
      seeds.push_back(mix_seed(g_config.base_seed, fh, i));
    }
  }

  const std::vector<std::string> verdicts = sim::run_sweep(
      seeds,
      [&](std::uint64_t seed) -> std::string {
        try {
          return run_one(seed);
        } catch (const std::exception& e) {
          return report(family, seed, "(harness)",
                        std::string("unexpected exception: ") + e.what(), nullptr);
        }
      },
      g_config.n_threads);
  g_instances += seeds.size() * instances_per_seed;

  std::size_t failures = 0;
  for (const std::string& verdict : verdicts) {
    if (verdict.empty()) continue;
    ++failures;
    std::fprintf(stderr, "[property] FAIL family=%s %s\n", family.c_str(),
                 verdict.c_str());
  }
  if (failures != 0) {
    ADD_FAILURE() << family << ": " << failures << " of " << seeds.size()
                  << " instances violated the oracle (seeds, recipes and replay "
                     "decks on stderr; decks under "
                  << g_config.failures_dir << "/)";
  }
}

// A model-only request wrapping a net, for replay decks of net-level
// failures.
api::Request wrap_net(std::uint64_t seed, const net::Net& net) {
  api::Request request;
  request.label = "pn" + seed_hex(seed);
  request.cell_size = 75.0;
  request.input_slew = 100 * ps;
  request.net = net;
  return request;
}

// Shared skeleton of the net-instance families: generate, check, shrink,
// report.  The oracle gets its own child stream so shrinking re-runs with
// identical auxiliary draws.
std::string run_net_instance(const std::string& family, std::uint64_t seed,
                             const std::function<void(const net::Net&, Rng)>& oracle) {
  Rng rng(seed);
  const NetRecipe recipe = random_net_recipe(rng);
  auto failure_of = [&](const NetRecipe& candidate) -> std::optional<std::string> {
    try {
      oracle(instantiate(candidate), Rng(mix_seed(seed, 0x0A11)));
      return std::nullopt;
    } catch (const Error& e) {
      return std::string(e.what());
    }
  };
  std::optional<std::string> first = failure_of(recipe);
  if (!first.has_value()) return {};
  const auto [smallest, error] =
      shrink_recipe<NetRecipe>(recipe, std::move(*first), failure_of);
  const api::Request replay = wrap_net(seed, instantiate(smallest));
  return report(family, seed, describe(smallest), error, &replay);
}

std::string run_group_instance(
    const std::string& family, std::uint64_t seed,
    const std::function<void(const GroupRecipe&, Rng)>& oracle) {
  Rng rng(seed);
  const GroupRecipe recipe = random_group_recipe(rng);
  auto failure_of = [&](const GroupRecipe& candidate) -> std::optional<std::string> {
    try {
      oracle(candidate, Rng(mix_seed(seed, 0x0A11)));
      return std::nullopt;
    } catch (const Error& e) {
      return std::string(e.what());
    }
  };
  std::optional<std::string> first = failure_of(recipe);
  if (!first.has_value()) return {};
  const auto [smallest, error] =
      shrink_recipe<GroupRecipe>(recipe, std::move(*first), failure_of);

  api::Request replay;
  replay.label = "pg" + seed_hex(seed);
  replay.group = instantiate(smallest);
  replay.victim = 0;
  return report(family, seed, describe(smallest), error, &replay);
}

TEST(PropertySuite, NetInvariants) {
  run_family("net_invariants", 260, 1, [](std::uint64_t seed) {
    return run_net_instance("net_invariants", seed, [](const net::Net& net, Rng) {
      check_net_invariants(net, OracleOptions{});
    });
  });
}

TEST(PropertySuite, ValidationReporting) {
  run_family("validation_reporting", 180, 1, [](std::uint64_t seed) -> std::string {
    try {
      check_validation_reporting(Rng(seed));
      return {};
    } catch (const Error& e) {
      return report("validation_reporting", seed, "(defect menu, see oracle)",
                    e.what(), nullptr);
    }
  });
}

// Every generator-valid net must lint with zero error-severity findings
// under the full pass (deep conditioning + model families included) — the
// analyzer's false-positive gate, swept at 1100 instances per run.
TEST(PropertySuite, LintClean) {
  run_family("lint_clean", 1100, 1, [](std::uint64_t seed) {
    return run_net_instance("lint_clean", seed, [](const net::Net& net, Rng) {
      check_lint_clean(net);
    });
  });
}

TEST(PropertySuite, LintCleanGroup) {
  run_family("lint_clean_group", 60, 1, [](std::uint64_t seed) {
    return run_group_instance("lint_clean_group", seed,
                              [](const GroupRecipe& recipe, Rng) {
                                check_lint_clean(instantiate(recipe));
                              });
  });
}

// The analyzer's false-negative gate: every MutationKind planted in a valid
// net must be caught by its expected code, on both faces of the taxonomy
// (lint_branch report and net::Net construction refusal).
TEST(PropertySuite, LintMutation) {
  run_family("lint_mutation", 150, all_mutations().size(), [](std::uint64_t seed) {
    return run_net_instance("lint_mutation", seed,
                            [](const net::Net& net, Rng rng) {
                              check_lint_mutation(net, rng);
                            });
  });
}

TEST(PropertySuite, LintMutationGroup) {
  run_family("lint_mutation_group", 40, 3, [](std::uint64_t seed) {
    return run_group_instance("lint_mutation_group", seed,
                              [](const GroupRecipe& recipe, Rng rng) {
                                check_lint_mutation_group(instantiate(recipe), rng);
                              });
  });
}

TEST(PropertySuite, CeffConvergence) {
  shared_engine();
  run_family("ceff_convergence", 160, 1, [](std::uint64_t seed) -> std::string {
    Rng rng(seed);
    const api::Request request = random_request(rng);
    try {
      check_engine_outcome(shared_engine(), request, property_batch_options());
      return {};
    } catch (const Error& e) {
      return report("ceff_convergence", seed, "request '" + request.label + "'",
                    e.what(), &request);
    }
  });
}

TEST(PropertySuite, MonotoneDelay) {
  shared_engine();
  run_family("monotone_delay", 120, 1, [](std::uint64_t seed) {
    return run_net_instance("monotone_delay", seed, [seed](const net::Net& net, Rng) {
      Rng aux(mix_seed(seed, 0xD1A7));
      const double cells[] = {25.0, 50.0, 75.0, 100.0, 150.0, 200.0};
      check_monotone_delay(shared_engine(), net, aux.pick(cells),
                           aux.uniform(50 * ps, 200 * ps), property_batch_options());
    });
  });
}

TEST(PropertySuite, CachedVsNaive) {
  run_family("cached_vs_naive", 90, 1, [](std::uint64_t seed) {
    return run_net_instance("cached_vs_naive", seed, [](const net::Net& net, Rng rng) {
      check_cached_vs_naive(net, rng, sim_oracle_options());
    });
  });
}

TEST(PropertySuite, CoupledCachedVsNaive) {
  run_family("coupled_cached_vs_naive", 18, 1, [](std::uint64_t seed) {
    return run_group_instance(
        "coupled_cached_vs_naive", seed, [](const GroupRecipe& recipe, Rng rng) {
          // Keep the coupled equivalence decks narrow: two uniform members,
          // few segments — the contract is fidelity-independent.
          GroupRecipe trimmed = recipe;
          if (trimmed.members.size() > 2) trimmed.members.resize(2);
          OracleOptions options = sim_oracle_options();
          options.segments = 4;
          check_cached_vs_naive(instantiate(trimmed), rng, options);
        });
  });
}

TEST(PropertySuite, SolverEquivalence) {
  run_family("solver_equivalence", 70, 1, [](std::uint64_t seed) {
    return run_net_instance("solver_equivalence", seed,
                            [](const net::Net& net, Rng rng) {
                              check_solver_equivalence(net, rng, OracleOptions{});
                            });
  });
}

// Each explicit backend (dense, banded, sparse) carries the factor-once
// cached-vs-naive bitwise contract on its own: both driver-driven (MOSFET
// restamping through the position map) and source-driven (static-image
// reuse) decks, drawn from the same child stream for every backend.
TEST(PropertySuite, ForcedSolver) {
  run_family("forced_solver", 36, 1, [](std::uint64_t seed) {
    return run_net_instance("forced_solver", seed, [](const net::Net& net, Rng rng) {
      constexpr sim::SolverKind kKinds[] = {
          sim::SolverKind::dense, sim::SolverKind::banded, sim::SolverKind::sparse};
      for (sim::SolverKind kind : kKinds) {
        OracleOptions options = sim_oracle_options();
        options.solver = kind;
        try {
          check_cached_vs_naive(net, rng, options);
        } catch (const Error& e) {
          throw Error(std::string("forced ") + sim::to_string(kind) + ": " +
                      e.what());
        }
      }
    });
  });
}

TEST(PropertySuite, ChargeConservation) {
  run_family("charge_conservation", 80, 1, [](std::uint64_t seed) {
    return run_net_instance("charge_conservation", seed,
                            [](const net::Net& net, Rng rng) {
                              OracleOptions options;
                              options.solver = g_config.forced_solver;
                              check_charge_conservation(net, rng, options);
                            });
  });
}

TEST(PropertySuite, GroupInvariants) {
  run_family("group_invariants", 60, 1, [](std::uint64_t seed) {
    return run_group_instance("group_invariants", seed,
                              [](const GroupRecipe& recipe, Rng rng) {
                                const net::CoupledGroup group = instantiate(recipe);
                                check_group_invariants(group,
                                                       rng.uniform_index(group.size()),
                                                       OracleOptions{});
                              });
  });
}

TEST(PropertySuite, BatchInvariance) {
  shared_engine();
  constexpr std::size_t kRequestsPerBatch = 24;
  run_family("batch_invariance", 3, kRequestsPerBatch,
             [](std::uint64_t seed) -> std::string {
               Rng rng(seed);
               std::vector<api::Request> requests;
               requests.reserve(kRequestsPerBatch);
               for (std::size_t k = 0; k < kRequestsPerBatch; ++k) {
                 api::Request request = random_request(rng);
                 request.label += "-" + std::to_string(k);  // force unique labels
                 requests.push_back(std::move(request));
               }
               try {
                 check_batch_invariance(shared_engine(), std::move(requests),
                                        property_batch_options(),
                                        Rng(mix_seed(seed, 0xBA7C)));
                 return {};
               } catch (const Error& e) {
                 return report("batch_invariance", seed,
                               std::to_string(kRequestsPerBatch) + "-request batch",
                               e.what(), nullptr);
               }
             });
}

// Chaos batches run low-fidelity reference decks: step_budget fault slots
// start (budget-stopped) transient sims, which must stay cheap at 200
// instances.
api::BatchOptions chaos_batch_options() {
  api::BatchOptions options = property_batch_options();
  options.deck.segments = 12;
  options.deck.dt = 1 * ps;
  return options;
}

TEST(PropertySuite, ChaosBatch) {
  shared_engine();
  constexpr std::size_t kChaosSlots = 6;
  run_family(
      "chaos_batch", 200, kChaosSlots, [](std::uint64_t seed) -> std::string {
        auto failure_of = [&](std::size_t slots) -> std::optional<std::string> {
          try {
            check_chaos_batch(shared_engine(), seed, chaos_batch_options(), slots);
            return std::nullopt;
          } catch (const Error& e) {
            return std::string(e.what());
          }
        };
        std::optional<std::string> first = failure_of(kChaosSlots);
        if (!first.has_value()) return {};
        // Shrink by truncation: faults are keyed on (seed, slot) and the
        // requests are drawn in slot order, so a shorter batch is a strict
        // prefix of the failing one.  Keep the shortest prefix that fails.
        std::size_t slots = kChaosSlots;
        std::string error = std::move(*first);
        for (std::size_t n = 1; n < kChaosSlots; ++n) {
          if (std::optional<std::string> message = failure_of(n)) {
            slots = n;
            error = std::move(*message);
            break;
          }
        }
        return report("chaos_batch", seed,
                      std::to_string(slots) + "-slot chaos batch", error, nullptr);
      });
}

// Replay fleets run at chaos fidelity (short decks, coarse dt): the oracle
// runs each fleet twice per backend, and the forced-dense pass would
// otherwise dominate the suite.
api::BatchOptions replay_batch_options() {
  api::BatchOptions options = property_batch_options();
  options.deck.segments = 12;
  options.deck.dt = 1 * ps;
  return options;
}

// Scenario batching is an execution strategy, not an estimator: over random
// topologies, random group shapes, all three forced backends (plus the
// automatic selection), and independently drawn thread counts, batched and
// per-slot replays must agree to the last bit of the far-end waveform.
TEST(PropertySuite, BatchedReplayEquivalence) {
  shared_engine();
  run_family(
      "batched_replay_equivalence", 16, 4, [](std::uint64_t seed) -> std::string {
        constexpr sim::SolverKind kKinds[] = {
            sim::SolverKind::automatic, sim::SolverKind::dense,
            sim::SolverKind::banded, sim::SolverKind::sparse};
        for (sim::SolverKind kind : kKinds) {
          try {
            check_batched_replay_equivalence(shared_engine(), seed,
                                             replay_batch_options(), kind);
          } catch (const Error& e) {
            return report("batched_replay_equivalence", seed,
                          std::string("replay fleet, forced ") +
                              sim::to_string(kind),
                          e.what(), nullptr);
          }
        }
        return {};
      });
}

// Near-identical is not identical: a one-ULP element value or one extra
// topology edge on a random compiled deck must never land in an existing
// factorization group, and the cheap hash key alone must already split it.
TEST(PropertySuite, AdversarialGrouping) {
  run_family("adversarial_grouping", 150, 1, [](std::uint64_t seed) -> std::string {
    try {
      check_adversarial_grouping(seed, sim_oracle_options());
      return {};
    } catch (const Error& e) {
      return report("adversarial_grouping", seed, "compiled source deck",
                    e.what(), nullptr);
    }
  });
}

// The chaos lane's batched-replay variant: one faulted member of a
// shared-factorization group (worker_throw, instant_deadline, or
// step_budget) must fail with its contractual code while its group-mates
// stay bitwise identical to the clean batched baseline.
TEST(PropertySuite, ChaosReplayGroup) {
  shared_engine();
  run_family("chaos_replay_group", 60, 4, [](std::uint64_t seed) -> std::string {
    try {
      check_chaos_replay_group(shared_engine(), seed, replay_batch_options());
      return {};
    } catch (const Error& e) {
      return report("chaos_replay_group", seed, "4-slot replay group", e.what(),
                    nullptr);
    }
  });
}

TEST(PropertySuite, NanStampGuard) {
  run_family("nan_stamp_guard", 60, 1, [](std::uint64_t seed) {
    return run_net_instance("nan_stamp_guard", seed, [](const net::Net& net, Rng rng) {
      OracleOptions options;
      options.solver = g_config.forced_solver;
      check_nan_stamp_fault(net, rng, options);
    });
  });
}

// TierPolicy::force_ceff must be bitwise-identical to the legacy model-only
// path on every random request (single nets and coupled groups alike): the
// tier subsystem is routing, not a new estimator, for Tier B.
TEST(PropertySuite, TierIdentity) {
  shared_engine();
  run_family("tier_identity", 400, 1, [](std::uint64_t seed) -> std::string {
    Rng rng(seed);
    const api::Request request = random_request(rng);
    try {
      check_tier_identity(shared_engine(), request, property_batch_options());
      return {};
    } catch (const Error& e) {
      return report("tier_identity", seed, "request '" + request.label + "'",
                    e.what(), &request);
    }
  });
}

// Whatever tier a balanced request routes to must sit inside that tier's
// checked-in accuracy envelope of the transient reference (low fidelity:
// the envelope is deliberately coarse enough to hold at any fidelity).
TEST(PropertySuite, TierEnvelope) {
  shared_engine();
  run_family("tier_envelope", 60, 1, [](std::uint64_t seed) -> std::string {
    Rng rng(seed);
    api::Request request = random_request(rng);
    try {
      api::BatchOptions options = property_batch_options();
      options.deck.segments = 12;
      options.deck.dt = 1 * ps;
      check_tier_envelope(shared_engine(), request, options);
      return {};
    } catch (const Error& e) {
      return report("tier_envelope", seed, "request '" + request.label + "'",
                    e.what(), &request);
    }
  });
}

TEST(PropertySuite, MillerEnvelope) {
  shared_engine();
  run_family("miller_envelope", 10, 1, [](std::uint64_t seed) {
    return run_group_instance(
        "miller_envelope", seed, [](const GroupRecipe& recipe, Rng rng) {
          GroupRecipe trimmed = recipe;
          if (trimmed.members.size() > 2) trimmed.members.resize(2);
          OracleOptions options;
          options.segments = 6;
          check_miller_envelope(shared_engine().technology(),
                                shared_engine().library(), trimmed, rng, options);
        });
  });
}

}  // namespace
}  // namespace rlceff::testkit

int main(int argc, char** argv) {
  using rlceff::testkit::g_config;
  using rlceff::testkit::g_instances;

  if (const char* scale = std::getenv("RLCEFF_PROPERTY_SCALE")) {
    g_config.scale_pct = std::atoi(scale);
  }

  ::testing::InitGoogleTest(&argc, argv);  // strips --gtest_* flags

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* { return k + 1 < argc ? argv[++k] : nullptr; };
    // Distinguishes "flag not matched" (nullptr) from "flag matched but the
    // value is missing" (diagnosed here), so a forgotten value is not
    // misreported as an unknown argument.
    auto value_of = [&](const std::string& flag) -> const char* {
      // Accept both "--flag value" and "--flag=value".
      if (arg == flag) {
        const char* v = next();
        if (v == nullptr) {
          std::fprintf(stderr, "rlceff_property: %s needs a value\n", flag.c_str());
          std::exit(2);
        }
        return v;
      }
      if (arg.rfind(flag + "=", 0) == 0) return arg.c_str() + flag.size() + 1;
      return nullptr;
    };
    if (const char* v = value_of("--count-scale")) {
      g_config.scale_pct = std::atoi(v);
    } else if (const char* v = value_of("--seed")) {
      g_config.replay_seed = std::strtoull(v, nullptr, 0);
    } else if (const char* v = value_of("--threads")) {
      g_config.n_threads = static_cast<unsigned>(std::atoi(v));
    } else if (const char* v = value_of("--failures-dir")) {
      g_config.failures_dir = v;
    } else if (const char* v = value_of("--solver")) {
      try {
        g_config.forced_solver = rlceff::sim::solver_kind_from_string(v);
      } catch (const rlceff::Error& e) {
        std::fprintf(stderr, "rlceff_property: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--inject-stamp-bug") {
      g_config.inject_stamp_bug = true;
    } else {
      std::fprintf(stderr,
                   "rlceff_property: unknown argument '%s'\n"
                   "usage: rlceff_property [gtest flags] [--count-scale <pct>] "
                   "[--seed <n>] [--threads <n>] [--failures-dir <dir>] "
                   "[--solver auto|dense|banded|sparse] [--inject-stamp-bug]\n",
                   arg.c_str());
      return 2;
    }
  }
  if (g_config.scale_pct <= 0) {
    std::fprintf(stderr, "rlceff_property: --count-scale must be positive\n");
    return 2;
  }

  std::fprintf(stderr,
               "[property] base_seed=0x%llx scale=%d%% threads=%u failures_dir=%s "
               "solver=%s%s\n",
               static_cast<unsigned long long>(g_config.base_seed), g_config.scale_pct,
               g_config.n_threads, g_config.failures_dir.c_str(),
               rlceff::sim::to_string(g_config.forced_solver),
               g_config.inject_stamp_bug ? " (stamp bug injected)" : "");

  const int rc = RUN_ALL_TESTS();
  std::fprintf(stderr, "[property] %zu generated instances swept\n",
               g_instances.load());
  return rc;
}
