// Shared-factorization scenario batching (sim/scenario_block.h): blocked
// multi-RHS solves, grouping hash/confirm, and the lockstep block engine's
// bitwise-equivalence and per-lane isolation contracts.
#include "sim/scenario_block.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "circuit/netlist.h"
#include "sim/transient.h"
#include "util/budget.h"
#include "util/error.h"
#include "util/linalg.h"
#include "util/sparse.h"
#include "waveform/pwl.h"

namespace rlceff {
namespace {

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ---- blocked multi-RHS solves -------------------------------------------

// Random diagonally-loaded matrix with a banded nonzero pattern.
std::vector<std::vector<double>> random_matrix(std::mt19937_64& rng, std::size_t n,
                                               std::size_t bw) {
  std::uniform_real_distribution<double> coef(-1.0, 1.0);
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if ((i >= j ? i - j : j - i) <= bw) a[i][j] = coef(rng);
    }
    a[i][i] += 4.0;
  }
  return a;
}

std::vector<double> random_rhs(std::mt19937_64& rng, std::size_t n) {
  std::uniform_real_distribution<double> coef(-2.0, 2.0);
  std::vector<double> b(n);
  for (double& v : b) v = coef(rng);
  return b;
}

TEST(SolveBlock, DenseLanesBitwiseMatchSingleRhs) {
  std::mt19937_64 rng(0x51ab10c1u);
  const std::size_t n = 37, lanes = 5, stride = 7;
  const auto a = random_matrix(rng, n, n);
  util::DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = a[i][j];
  }
  const util::LuFactors f = util::lu_factor(m);

  std::vector<std::vector<double>> rhs;
  for (std::size_t s = 0; s < lanes; ++s) rhs.push_back(random_rhs(rng, n));

  std::vector<double> block(n * stride, 0.25);  // padding columns must survive
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < lanes; ++s) block[i * stride + s] = rhs[s][i];
  }
  util::lu_solve_block(f, block, lanes, stride);

  for (std::size_t s = 0; s < lanes; ++s) {
    std::vector<double> x = rhs[s];
    util::lu_solve_into(f, x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dbits(x[i]), dbits(block[i * stride + s])) << "lane " << s;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = lanes; s < stride; ++s) {
      EXPECT_EQ(block[i * stride + s], 0.25);
    }
  }
}

TEST(SolveBlock, BandedLanesBitwiseMatchSingleRhs) {
  std::mt19937_64 rng(0xba4dedu);
  const std::size_t n = 41, bw = 3, lanes = 6, stride = 6;
  const auto a = random_matrix(rng, n, bw);
  util::BandedMatrix m(n, bw, bw);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (a[i][j] != 0.0) m.add(i, j, a[i][j]);
    }
  }
  m.factor();

  std::vector<std::vector<double>> rhs;
  for (std::size_t s = 0; s < lanes; ++s) rhs.push_back(random_rhs(rng, n));
  std::vector<double> block(n * stride, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < lanes; ++s) block[i * stride + s] = rhs[s][i];
  }
  m.solve_block(block, lanes, stride);

  for (std::size_t s = 0; s < lanes; ++s) {
    std::vector<double> x = rhs[s];
    m.solve_into(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dbits(x[i]), dbits(block[i * stride + s])) << "lane " << s;
    }
  }
}

TEST(SolveBlock, SparseLanesBitwiseMatchSingleRhs) {
  std::mt19937_64 rng(0x5a2c3e11u);
  const std::size_t n = 53, bw = 4, lanes = 4, stride = 5;
  const auto a = random_matrix(rng, n, bw);
  std::vector<std::pair<std::size_t, std::size_t>> positions;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if ((i >= j ? i - j : j - i) <= bw) positions.emplace_back(i, j);
    }
  }
  util::SparseMatrix m(n, positions);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (a[i][j] != 0.0) m.add(i, j, a[i][j]);
    }
  }
  util::SparseLu lu;
  lu.analyze(m);
  lu.factor(m);

  std::vector<std::vector<double>> rhs;
  for (std::size_t s = 0; s < lanes; ++s) rhs.push_back(random_rhs(rng, n));
  std::vector<double> block(n * stride, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t s = 0; s < lanes; ++s) block[i * stride + s] = rhs[s][i];
  }
  lu.solve_block(block, lanes, stride);

  for (std::size_t s = 0; s < lanes; ++s) {
    std::vector<double> x = rhs[s];
    lu.solve_into(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dbits(x[i]), dbits(block[i * stride + s])) << "lane " << s;
    }
  }
}

// ---- grouping ------------------------------------------------------------

// The test deck: an RLC ladder driven by a saturated ramp.  Lanes of a group
// share every element value and differ only in the source slew (the matrix
// never sees the waveform).
ckt::Netlist make_line_deck(double slew, std::size_t segments,
                            double c_per_seg = 3e-15) {
  ckt::Netlist nl;
  const ckt::NodeId in = nl.node("in");
  nl.add_vsource(in, ckt::ground,
                 wave::Pwl({{10e-12, 0.0}, {10e-12 + slew, 1.0}}));
  ckt::NodeId prev = in;
  for (std::size_t k = 0; k < segments; ++k) {
    const ckt::NodeId mid = nl.add_node();
    const ckt::NodeId next = nl.add_node();
    nl.add_resistor(prev, mid, 2.0);
    nl.add_inductor(mid, next, 5e-12);
    nl.add_capacitor(next, ckt::ground, c_per_seg);
    prev = next;
  }
  nl.add_capacitor(prev, ckt::ground, 20e-15);
  return nl;
}

ckt::NodeId far_node(std::size_t segments) { return 1 + 2 * segments; }

TEST(ScenarioGrouping, WaveformsDoNotAffectGroupIdentity) {
  const ckt::Netlist a = make_line_deck(20e-12, 8);
  const ckt::Netlist b = make_line_deck(180e-12, 8);
  sim::TransientOptions opt;
  EXPECT_TRUE(sim::scenario_group_equal(a, b));
  EXPECT_EQ(sim::scenario_group_hash(a, opt), sim::scenario_group_hash(b, opt));
  EXPECT_TRUE(sim::scenario_options_equal(opt, opt));
}

TEST(ScenarioGrouping, OneUlpPerturbationNeverAliases) {
  const double c = 3e-15;
  const ckt::Netlist a = make_line_deck(50e-12, 8, c);
  const ckt::Netlist b = make_line_deck(50e-12, 8, std::nextafter(c, 1.0));
  sim::TransientOptions opt;
  EXPECT_FALSE(sim::scenario_group_equal(a, b));
  EXPECT_NE(sim::scenario_group_hash(a, opt), sim::scenario_group_hash(b, opt));
}

TEST(ScenarioGrouping, TopologyEdgeNeverAliases) {
  const ckt::Netlist a = make_line_deck(50e-12, 8);
  ckt::Netlist b = make_line_deck(50e-12, 8);
  b.add_resistor(far_node(8), ckt::ground, 1e6);
  sim::TransientOptions opt;
  EXPECT_FALSE(sim::scenario_group_equal(a, b));
  EXPECT_NE(sim::scenario_group_hash(a, opt), sim::scenario_group_hash(b, opt));
}

TEST(ScenarioGrouping, MatrixShapingOptionsSplitGroups) {
  const ckt::Netlist a = make_line_deck(50e-12, 8);
  sim::TransientOptions opt;
  sim::TransientOptions finer = opt;
  finer.dt = std::nextafter(opt.dt, 0.0);
  EXPECT_FALSE(sim::scenario_options_equal(opt, finer));
  EXPECT_NE(sim::scenario_group_hash(a, opt), sim::scenario_group_hash(a, finer));
  sim::TransientOptions other_solver = opt;
  other_solver.solver = sim::SolverKind::dense;
  EXPECT_FALSE(sim::scenario_options_equal(opt, other_solver));
}

// ---- block engine vs scalar engine --------------------------------------

void expect_bitwise(const wave::Waveform& a, const wave::Waveform& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(dbits(a.time(i)), dbits(b.time(i))) << what << " t[" << i << "]";
    ASSERT_EQ(dbits(a.value(i)), dbits(b.value(i))) << what << " v[" << i << "]";
  }
}

class BlockVsScalar : public ::testing::TestWithParam<sim::SolverKind> {};

TEST_P(BlockVsScalar, LanesBitwiseMatchPerSlotRuns) {
  const std::size_t segments = 12;
  // Mixed horizons: exact step multiples, partial final steps, and one lane
  // short enough to retire while the rest keep integrating.
  const std::vector<double> slews{20e-12, 60e-12, 110e-12, 160e-12, 220e-12};
  const std::vector<double> t_stops{400e-12, 400.3e-12, 250e-12, 330.7e-12,
                                    120.9e-12};

  std::vector<ckt::Netlist> decks;
  for (double s : slews) decks.push_back(make_line_deck(s, segments));
  const std::vector<ckt::NodeId> probes{1, far_node(segments)};

  sim::TransientOptions opt;
  opt.dt = 1e-12;
  opt.solver = GetParam();

  std::vector<sim::BlockScenario> scenarios;
  for (std::size_t k = 0; k < decks.size(); ++k) {
    scenarios.push_back({&decks[k], t_stops[k], nullptr});
  }
  const std::vector<sim::BlockOutcome> block =
      sim::simulate_block(scenarios, opt, probes);

  for (std::size_t k = 0; k < decks.size(); ++k) {
    ASSERT_TRUE(block[k].result.has_value()) << "lane " << k;
    sim::TransientOptions scalar_opt = opt;
    scalar_opt.t_stop = t_stops[k];
    const sim::TransientResult ref = sim::simulate(decks[k], scalar_opt, probes);
    for (ckt::NodeId p : probes) {
      expect_bitwise(block[k].result->at(p), ref.at(p), "probe");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BlockVsScalar,
                         ::testing::Values(sim::SolverKind::banded,
                                           sim::SolverKind::dense,
                                           sim::SolverKind::sparse),
                         [](const auto& info) {
                           return std::string(sim::to_string(info.param));
                         });

TEST(BlockIsolation, FaultedLaneLeavesGroupMatesBitwise) {
  const std::size_t segments = 10;
  const std::vector<double> slews{30e-12, 80e-12, 140e-12, 200e-12};
  const std::vector<double> t_stops{500e-12, 400e-12, 300e-12, 200.4e-12};
  std::vector<ckt::Netlist> decks;
  for (double s : slews) decks.push_back(make_line_deck(s, segments));
  const std::vector<ckt::NodeId> probes{1, far_node(segments)};

  sim::TransientOptions opt;
  opt.dt = 1e-12;

  // Clean run: everything succeeds.
  std::vector<sim::BlockScenario> clean;
  for (std::size_t k = 0; k < decks.size(); ++k) {
    clean.push_back({&decks[k], t_stops[k], nullptr});
  }
  const std::vector<sim::BlockOutcome> want =
      sim::simulate_block(clean, opt, probes);
  for (const sim::BlockOutcome& o : want) ASSERT_TRUE(o.result.has_value());

  // Faulted run: lane 0 has the longest horizon (so it sits at the *front*
  // of the sorted block, exercising the mid-array removal) and a step budget
  // that runs dry mid-flight.
  util::ExecBudget budget;
  budget.max_transient_steps = 150;
  util::ExecTracker tracker(budget);
  std::vector<sim::BlockScenario> faulted = clean;
  faulted[0].budget = &tracker;
  const std::vector<sim::BlockOutcome> got =
      sim::simulate_block(faulted, opt, probes);

  ASSERT_FALSE(got[0].result.has_value());
  ASSERT_TRUE(static_cast<bool>(got[0].error));
  EXPECT_THROW(std::rethrow_exception(got[0].error), BudgetError);

  for (std::size_t k = 1; k < decks.size(); ++k) {
    ASSERT_TRUE(got[k].result.has_value()) << "lane " << k;
    for (ckt::NodeId p : probes) {
      expect_bitwise(got[k].result->at(p), want[k].result->at(p), "survivor");
    }
  }
}

TEST(BlockIsolation, PerLaneBudgetsChargeIndependently) {
  const std::size_t segments = 6;
  std::vector<ckt::Netlist> decks;
  decks.push_back(make_line_deck(40e-12, segments));
  decks.push_back(make_line_deck(90e-12, segments));
  const std::vector<ckt::NodeId> probes{far_node(segments)};

  sim::TransientOptions opt;
  opt.dt = 1e-12;

  // Both lanes carry ample budgets; each must be charged its own lane's
  // steps — exactly what the scalar engine charges that scenario — not the
  // block's total.
  util::ExecBudget budget;
  budget.max_transient_steps = 250;
  util::ExecTracker ta(budget);
  util::ExecTracker tb(budget);
  std::vector<sim::BlockScenario> scenarios{{&decks[0], 200e-12, &ta},
                                            {&decks[1], 200e-12, &tb}};
  const std::vector<sim::BlockOutcome> got =
      sim::simulate_block(scenarios, opt, probes);
  ASSERT_TRUE(got[0].result.has_value());
  ASSERT_TRUE(got[1].result.has_value());

  util::ExecTracker scalar_tracker(budget);
  sim::TransientOptions scalar_opt = opt;
  scalar_opt.t_stop = 200e-12;
  scalar_opt.budget = &scalar_tracker;
  (void)sim::simulate(decks[0], scalar_opt, probes);
  EXPECT_EQ(ta.steps_used(), scalar_tracker.steps_used());
  EXPECT_EQ(tb.steps_used(), scalar_tracker.steps_used());
}

TEST(BlockEngine, RejectsMixedTopologies) {
  ckt::Netlist a = make_line_deck(40e-12, 6);
  ckt::Netlist b = make_line_deck(40e-12, 7);
  const std::vector<ckt::NodeId> probes{1};
  sim::TransientOptions opt;
  opt.dt = 1e-12;
  std::vector<sim::BlockScenario> scenarios{{&a, 100e-12, nullptr},
                                            {&b, 100e-12, nullptr}};
  EXPECT_THROW(sim::simulate_block(scenarios, opt, probes), Error);
}

}  // namespace
}  // namespace rlceff
