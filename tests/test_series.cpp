// Unit tests for the truncated power-series algebra.
#include "util/series.h"

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/error.h"

namespace rlceff::util {
namespace {

using rlceff::testing::expect_rel_near;
using rlceff::testing::uniform;

constexpr std::size_t n = 8;

Series random_series(double scale, bool invertible) {
  Series s(n);
  for (std::size_t k = 0; k < n; ++k) s[k] = rlceff::testing::uniform(-scale, scale);
  if (invertible && std::abs(s[0]) < 0.1) s[0] = 1.0 + s[0];
  return s;
}

TEST(Series, ConstantAndVariable) {
  const Series c = Series::constant(3.5, n);
  EXPECT_DOUBLE_EQ(3.5, c[0]);
  for (std::size_t k = 1; k < n; ++k) EXPECT_DOUBLE_EQ(0.0, c[k]);

  const Series s = Series::variable(n);
  EXPECT_DOUBLE_EQ(0.0, s[0]);
  EXPECT_DOUBLE_EQ(1.0, s[1]);
}

TEST(Series, AdditionSubtraction) {
  const Series a({1.0, 2.0, 3.0}, n);
  const Series b({0.5, -1.0, 4.0}, n);
  const Series sum = a + b;
  EXPECT_DOUBLE_EQ(1.5, sum[0]);
  EXPECT_DOUBLE_EQ(1.0, sum[1]);
  EXPECT_DOUBLE_EQ(7.0, sum[2]);
  const Series diff = sum - b;
  EXPECT_TRUE(diff.almost_equal(a, 1e-15));
}

TEST(Series, MultiplicationMatchesConvolution) {
  const Series a({1.0, 1.0}, n);         // 1 + s
  const Series square = a * a;           // 1 + 2s + s^2
  EXPECT_DOUBLE_EQ(1.0, square[0]);
  EXPECT_DOUBLE_EQ(2.0, square[1]);
  EXPECT_DOUBLE_EQ(1.0, square[2]);
  EXPECT_DOUBLE_EQ(0.0, square[3]);
}

TEST(Series, GeometricSeriesDivision) {
  // 1 / (1 - s) = 1 + s + s^2 + ...
  const Series one = Series::constant(1.0, n);
  const Series den({1.0, -1.0}, n);
  const Series q = one / den;
  for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(1.0, q[k], 1e-14);
}

TEST(Series, DivisionByZeroLeadingCoefficientThrows) {
  const Series one = Series::constant(1.0, n);
  const Series den({0.0, 1.0}, n);
  EXPECT_THROW(one / den, Error);
}

TEST(Series, OrderMismatchThrows) {
  const Series a(4);
  const Series b(5);
  EXPECT_THROW(a + b, Error);
}

TEST(Series, SqrtRoundTrip) {
  for (int trial = 0; trial < 20; ++trial) {
    Series a = random_series(1.0, true);
    if (a[0] <= 0.0) a[0] = 1.0 + std::abs(a[0]);
    const Series r = a.sqrt();
    EXPECT_TRUE((r * r).almost_equal(a, 1e-10)) << "trial " << trial;
  }
}

TEST(Series, MulDivRoundTripProperty) {
  for (int trial = 0; trial < 50; ++trial) {
    const Series a = random_series(2.0, false);
    const Series b = random_series(2.0, true);
    const Series back = (a * b) / b;
    EXPECT_TRUE(back.almost_equal(a, 1e-9)) << "trial " << trial;
  }
}

TEST(Series, ShiftedMultipliesByPowerOfS) {
  const Series a({1.0, 2.0, 3.0}, n);
  const Series shifted = a.shifted(2);
  EXPECT_DOUBLE_EQ(0.0, shifted[0]);
  EXPECT_DOUBLE_EQ(0.0, shifted[1]);
  EXPECT_DOUBLE_EQ(1.0, shifted[2]);
  EXPECT_DOUBLE_EQ(2.0, shifted[3]);
  EXPECT_DOUBLE_EQ(3.0, shifted[4]);
}

TEST(Series, ComposeExpOfLinear) {
  // exp(u) with u = 2s: coefficients 2^k / k!.
  std::vector<double> exp_coeffs(n);
  double fact = 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (k > 0) fact *= static_cast<double>(k);
    exp_coeffs[k] = 1.0 / fact;
  }
  const Series u({0.0, 2.0}, n);
  const Series e = Series::compose(exp_coeffs, u);
  double expect = 1.0;
  fact = 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (k > 0) {
      fact *= static_cast<double>(k);
      expect = std::pow(2.0, static_cast<double>(k)) / fact;
    }
    EXPECT_NEAR(expect, e[k], 1e-12) << "k=" << k;
  }
}

TEST(Series, ComposeRequiresZeroConstantTerm) {
  const std::vector<double> outer{1.0, 1.0};
  const Series inner({1.0, 1.0}, n);
  EXPECT_THROW(Series::compose(outer, inner), Error);
}

TEST(Series, ComposeQuadraticInner) {
  // (1 + u)^2 with u = s + s^2: 1 + 2(s + s^2) + (s + s^2)^2.
  const std::vector<double> outer{1.0, 2.0, 1.0};
  const Series u({0.0, 1.0, 1.0}, n);
  const Series r = Series::compose(outer, u);
  EXPECT_NEAR(1.0, r[0], 1e-14);
  EXPECT_NEAR(2.0, r[1], 1e-14);
  EXPECT_NEAR(3.0, r[2], 1e-14);  // 2 + 1
  EXPECT_NEAR(2.0, r[3], 1e-14);  // cross term
  EXPECT_NEAR(1.0, r[4], 1e-14);
}

TEST(Series, NegationAndScalarOps) {
  const Series a({1.0, -2.0}, n);
  const Series neg = -a;
  EXPECT_DOUBLE_EQ(-1.0, neg[0]);
  EXPECT_DOUBLE_EQ(2.0, neg[1]);
  const Series scaled = 3.0 * a;
  EXPECT_DOUBLE_EQ(3.0, scaled[0]);
  EXPECT_DOUBLE_EQ(-6.0, scaled[1]);
}

}  // namespace
}  // namespace rlceff::util
