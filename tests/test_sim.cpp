// Physics validation of the transient simulator against closed forms.
#include "sim/transient.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "circuit/builders.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::sim {
namespace {

using namespace rlceff::units;
using ckt::ground;
using ckt::Netlist;
using ckt::NodeId;
using rlceff::testing::expect_rel_near;

TEST(DcOperatingPoint, ResistorDivider) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId mid = nl.node("mid");
  nl.add_vsource(a, ground, wave::Pwl({{0.0, 3.0}}));
  nl.add_resistor(a, mid, 1000.0);
  nl.add_resistor(mid, ground, 2000.0);
  const auto op = dc_operating_point(nl);
  EXPECT_NEAR(3.0, op.node_voltage[a], 1e-8);
  // gmin (1e-12 S) loads the divider by ~1e-9 V; tolerance allows for it.
  EXPECT_NEAR(2.0, op.node_voltage[mid], 1e-8);
  // Source current: 3 V over 3 kohm, flowing out of the positive terminal.
  EXPECT_NEAR(-1e-3, op.vsource_current[0], 1e-9);
}

TEST(DcOperatingPoint, InductorIsShort) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.add_vsource(a, ground, wave::Pwl({{0.0, 1.0}}));
  nl.add_resistor(a, b, 100.0);
  nl.add_inductor(b, ground, 1 * nh);
  const auto op = dc_operating_point(nl);
  EXPECT_NEAR(0.0, op.node_voltage[b], 1e-9);
  EXPECT_NEAR(0.01, op.inductor_current[0], 1e-9);
}

TEST(Transient, RcStepResponseMatchesAnalytic) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 0.0}, {1e-15, 1.0}}));
  nl.add_resistor(in, out, 1000.0);
  nl.add_capacitor(out, ground, 1 * pf);  // tau = 1 ns

  TransientOptions opt;
  opt.t_stop = 4 * ns;
  opt.dt = 2 * ps;
  const std::array<NodeId, 1> probes{out};
  const auto res = simulate(nl, opt, probes);
  // The quasi-step source is unresolved by dt, which shifts the response by
  // ~dt/2; the tolerance covers that first-step smear.
  for (double t = 0.2 * ns; t <= 3.5 * ns; t += 0.4 * ns) {
    const double expect = 1.0 - std::exp(-t / (1 * ns));
    EXPECT_NEAR(expect, res.at(out).value_at(t), 2e-3) << "t=" << t;
  }
}

TEST(Transient, BackwardEulerAlsoConverges) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 0.0}, {1e-15, 1.0}}));
  nl.add_resistor(in, out, 1000.0);
  nl.add_capacitor(out, ground, 1 * pf);

  TransientOptions opt;
  opt.t_stop = 2 * ns;
  opt.dt = 1 * ps;
  opt.integrator = Integrator::backward_euler;
  const std::array<NodeId, 1> probes{out};
  const auto res = simulate(nl, opt, probes);
  const double expect = 1.0 - std::exp(-1.0);
  EXPECT_NEAR(expect, res.at(out).value_at(1 * ns), 2e-3);
}

TEST(Transient, TrapezoidalIsSecondOrder) {
  // Halving dt should shrink the error by ~4x.  The excitation must be
  // resolved by the step (a ramp, not a quasi-step) or the first-step
  // discontinuity error dominates and the observed order collapses to one.
  auto rc_error = [](double dt) {
    Netlist nl;
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.add_vsource(in, ground, wave::Pwl({{0.0, 0.0}, {0.4 * ns, 1.0}}));
    nl.add_resistor(in, out, 1000.0);
    nl.add_capacitor(out, ground, 1 * pf);  // tau = 1 ns
    TransientOptions opt;
    opt.t_stop = 1.6 * ns;
    opt.dt = dt;
    const std::array<NodeId, 1> probes{out};
    const auto res = simulate(nl, opt, probes);
    // Saturated-ramp response: superposition of two infinite-ramp responses.
    const double tau = 1 * ns;
    const double tr = 0.4 * ns;
    auto ramp_resp = [&](double t) {
      return t <= 0.0 ? 0.0 : (t - tau * (1.0 - std::exp(-t / tau))) / tr;
    };
    double max_err = 0.0;
    // Sample only at points both grids hit exactly, so linear interpolation
    // of the recorded waveform does not pollute the measured order.
    for (double t = 0.16 * ns; t <= 1.45 * ns; t += 0.16 * ns) {
      const double expect = ramp_resp(t) - ramp_resp(t - tr);
      max_err = std::max(max_err, std::abs(res.at(out).value_at(t) - expect));
    }
    return max_err;
  };
  const double coarse = rc_error(8 * ps);
  const double fine = rc_error(4 * ps);
  EXPECT_GT(coarse / fine, 3.0);
  EXPECT_LT(coarse / fine, 5.5);
}

TEST(Transient, RcRampResponseMatchesAnalytic) {
  // v_out for an infinite input ramp of slope m into RC:
  // v(t) = m (t - tau (1 - e^{-t/tau})).
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  const double slope = 1.0 / (1 * ns);
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 0.0}, {10 * ns, 10.0}}));
  nl.add_resistor(in, out, 500.0);
  nl.add_capacitor(out, ground, 1 * pf);  // tau = 0.5 ns

  TransientOptions opt;
  opt.t_stop = 3 * ns;
  opt.dt = 2 * ps;
  const std::array<NodeId, 1> probes{out};
  const auto res = simulate(nl, opt, probes);
  const double tau = 0.5 * ns;
  for (double t = 0.3 * ns; t <= 2.7 * ns; t += 0.6 * ns) {
    const double expect = slope * (t - tau * (1.0 - std::exp(-t / tau)));
    expect_rel_near(expect, res.at(out).value_at(t), 2e-3);
  }
}

TEST(Transient, RlCurrentRiseMatchesAnalytic) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId mid = nl.node("mid");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 0.0}, {1e-15, 1.0}}));
  nl.add_resistor(in, mid, 50.0);
  nl.add_inductor(mid, ground, 5 * nh);  // tau = L/R = 100 ps

  TransientOptions opt;
  opt.t_stop = 600 * ps;
  opt.dt = 0.2 * ps;
  const std::array<NodeId, 1> probes{mid};
  const auto res = simulate(nl, opt, probes);
  // v_mid = V e^{-t/tau} (voltage across the inductor decays).
  const double tau = 100 * ps;
  for (double t = 50 * ps; t <= 500 * ps; t += 90 * ps) {
    const double expect = std::exp(-t / tau);
    EXPECT_NEAR(expect, res.at(mid).value_at(t), 3e-3) << "t=" << t;
  }
}

TEST(Transient, SeriesRlcUnderdampedMatchesAnalytic) {
  // Series R-L-C driven by a step: classic underdamped capacitor voltage.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId a = nl.node("a");
  const NodeId out = nl.node("out");
  const double r = 20.0;
  const double l = 5 * nh;
  const double c = 1 * pf;
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 0.0}, {1e-15, 1.0}}));
  nl.add_resistor(in, a, r);
  nl.add_inductor(a, out, l);
  nl.add_capacitor(out, ground, c);

  TransientOptions opt;
  opt.t_stop = 1.2 * ns;
  opt.dt = 0.1 * ps;
  const std::array<NodeId, 1> probes{out};
  const auto res = simulate(nl, opt, probes);

  const double alpha = r / (2.0 * l);
  const double w0 = 1.0 / std::sqrt(l * c);
  ASSERT_GT(w0, alpha);  // underdamped setup
  const double wd = std::sqrt(w0 * w0 - alpha * alpha);
  for (double t = 50 * ps; t <= 1.1 * ns; t += 105 * ps) {
    const double expect =
        1.0 - std::exp(-alpha * t) * (std::cos(wd * t) + alpha / wd * std::sin(wd * t));
    EXPECT_NEAR(expect, res.at(out).value_at(t), 5e-3) << "t=" << t;
  }
}

TEST(Transient, MatchedLineShowsHalfStepAndFlightDelay) {
  // Ideal step through Rs = Z0 into a low-loss line: the near end sits at
  // ~V/2 and the far (open) end doubles to ~V after one time of flight.
  Netlist nl;
  const NodeId src = nl.node("src");
  const NodeId in = nl.node("in");
  const double l_total = 5 * nh;
  const double c_total = 1 * pf;
  const double z0 = std::sqrt(l_total / c_total);  // ~70.7 ohm
  const double tf = std::sqrt(l_total * c_total);  // ~70.7 ps
  nl.add_vsource(src, ground, wave::Pwl({{0.0, 0.0}, {1 * ps, 1.0}}));
  nl.add_resistor(src, in, z0);
  const auto line = ckt::append_rlc_ladder(nl, in, 1.0 /*almost lossless*/, l_total,
                                           c_total, 160);

  TransientOptions opt;
  opt.t_stop = 500 * ps;
  opt.dt = 0.1 * ps;
  const std::array<NodeId, 2> probes{in, line.far_end};
  const auto res = simulate(nl, opt, probes);

  // Near end holds the divider level until the (absorbed) reflection.
  EXPECT_NEAR(0.5, res.at(in).value_at(0.8 * tf), 0.03);
  // Far end is quiet before the wave arrives...
  EXPECT_NEAR(0.0, res.at(line.far_end).value_at(0.6 * tf), 0.02);
  // ...and has doubled shortly after t_f.
  EXPECT_NEAR(1.0, res.at(line.far_end).value_at(1.6 * tf), 0.06);
  // Matched source: no second step at the near end.
  EXPECT_NEAR(1.0, res.at(in).value_at(4.0 * tf), 0.05);
}

TEST(Transient, ChargeDeliveredMatchesCapacitor) {
  // Integrate the source current of an RC charge-up: total charge = C*V.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 0.0}, {1e-15, 1.0}}));
  nl.add_resistor(in, out, 100.0);
  nl.add_capacitor(out, ground, 2 * pf);

  TransientOptions opt;
  opt.t_stop = 5 * ns;
  opt.dt = 1 * ps;
  const std::array<NodeId, 2> probes{in, out};
  const auto res = simulate(nl, opt, probes);
  // Current through R = (v_in - v_out)/R; trapezoidal sum over samples.
  const auto& win = res.at(in);
  const auto& wout = res.at(out);
  double q = 0.0;
  for (std::size_t k = 1; k < win.size(); ++k) {
    const double i1 = (win.value(k) - wout.value(k)) / 100.0;
    const double i0 = (win.value(k - 1) - wout.value(k - 1)) / 100.0;
    q += 0.5 * (i0 + i1) * (win.time(k) - win.time(k - 1));
  }
  expect_rel_near(2e-12, q, 1e-3);
}

TEST(SolverSelection, NarrowLadderPicksBandedAndOverridesWin) {
  Netlist nl;
  const NodeId src = nl.node("src");
  nl.add_vsource(src, ground, wave::Pwl({{0.0, 0.0}, {100 * ps, 1.0}}));
  ckt::append_rlc_ladder(nl, src, 100.0, 1 * nh, 200e-15, 40);

  EXPECT_EQ(SolverKind::banded, selected_solver(nl));
  EXPECT_TRUE(uses_banded_solver(nl));  // deprecated shim, same predicate

  TransientOptions opt;
  opt.solver = SolverKind::sparse;
  EXPECT_EQ(SolverKind::sparse, selected_solver(nl, opt));
  opt.solver = SolverKind::dense;
  EXPECT_EQ(SolverKind::dense, selected_solver(nl, opt));

  // The deprecated force_dense spelling still maps to a dense override, but
  // an explicit SolverKind beats it.
  opt.solver = SolverKind::automatic;
  opt.force_dense = true;
  EXPECT_EQ(SolverKind::dense, selected_solver(nl, opt));
  opt.solver = SolverKind::banded;
  EXPECT_EQ(SolverKind::banded, selected_solver(nl, opt));
}

TEST(SolverSelection, KindNamesRoundTrip) {
  for (const SolverKind kind : {SolverKind::automatic, SolverKind::dense,
                                SolverKind::banded, SolverKind::sparse}) {
    EXPECT_EQ(kind, solver_kind_from_string(to_string(kind)));
  }
  EXPECT_THROW(solver_kind_from_string("cholesky"), Error);
}

TEST(SolverSelection, AllBackendsAgreeOnAnRlcLadder) {
  // One deck, three factorizations: waveforms must agree to LU roundoff.
  Netlist nl;
  const NodeId src = nl.node("src");
  nl.add_vsource(src, ground, wave::Pwl({{0.0, 0.0}, {50 * ps, 1.0}}));
  const auto line = ckt::append_rlc_ladder(nl, src, 200.0, 2 * nh, 400e-15, 30);
  nl.add_capacitor(line.far_end, ground, 20e-15);

  TransientOptions opt;
  opt.t_stop = 0.5 * ns;
  opt.dt = 1 * ps;
  const std::array<NodeId, 1> probes{line.far_end};

  opt.solver = SolverKind::dense;
  const auto dense = simulate(nl, opt, probes);
  opt.solver = SolverKind::banded;
  const auto banded = simulate(nl, opt, probes);
  opt.solver = SolverKind::sparse;
  const auto sparse = simulate(nl, opt, probes);

  const auto& wd = dense.at(line.far_end);
  const auto& wb = banded.at(line.far_end);
  const auto& ws = sparse.at(line.far_end);
  ASSERT_EQ(wd.size(), wb.size());
  ASSERT_EQ(wd.size(), ws.size());
  for (std::size_t k = 0; k < wd.size(); ++k) {
    EXPECT_NEAR(wd.value(k), wb.value(k), 1e-10);
    EXPECT_NEAR(wd.value(k), ws.value(k), 1e-10);
  }
}

TEST(Transient, ProbeValidation) {
  Netlist nl;
  const NodeId in = nl.node("in");
  nl.add_vsource(in, ground, wave::Pwl({{0.0, 1.0}}));
  nl.add_resistor(in, ground, 100.0);
  TransientOptions opt;
  opt.t_stop = 1 * ps;
  opt.dt = 0.5 * ps;
  const std::array<NodeId, 1> probes{in};
  const auto res = simulate(nl, opt, probes);
  EXPECT_NO_THROW(res.at(in));
  EXPECT_THROW(res.at(42), Error);
}

}  // namespace
}  // namespace rlceff::sim
