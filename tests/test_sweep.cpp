// Tests for the parallel scenario sweep runner: ordering, determinism across
// thread counts, and failure semantics.
#include "sim/sweep.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <string>

#include "circuit/netlist.h"
#include "sim/transient.h"
#include "util/error.h"
#include "util/units.h"
#include "waveform/pwl.h"

namespace rlceff::sim {
namespace {

using namespace rlceff::units;

// A per-index workload whose result depends on nothing but the index.
double busy_value(std::size_t i) {
  double acc = static_cast<double>(i) + 1.0;
  for (int k = 0; k < 200; ++k) acc = std::sin(acc) + static_cast<double>(i) * 1e-3;
  return acc;
}

TEST(Sweep, WorkerCountClampsToTasks) {
  EXPECT_EQ(0u, sweep_worker_count(0, 8));
  EXPECT_EQ(3u, sweep_worker_count(3, 8));
  EXPECT_EQ(2u, sweep_worker_count(7, 2));
  EXPECT_GE(sweep_worker_count(100, 0), 1u);  // hardware concurrency, at least one
}

TEST(Sweep, PreservesInputOrder) {
  std::vector<int> scenarios;
  for (int k = 0; k < 37; ++k) scenarios.push_back(k);
  const std::vector<int> results =
      run_sweep(scenarios, [](const int& s) { return 3 * s + 1; }, 4);
  ASSERT_EQ(scenarios.size(), results.size());
  for (int k = 0; k < 37; ++k) EXPECT_EQ(3 * k + 1, results[static_cast<std::size_t>(k)]);
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  std::vector<std::size_t> scenarios;
  for (std::size_t k = 0; k < 53; ++k) scenarios.push_back(k);
  auto task = [](const std::size_t& i) { return busy_value(i); };

  const std::vector<double> serial = run_sweep(scenarios, task, 1);
  for (unsigned n_threads : {2u, 3u, 8u}) {
    const std::vector<double> parallel = run_sweep(scenarios, task, n_threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t k = 0; k < serial.size(); ++k) {
      // Bitwise equality: scheduling must not leak into the results.
      EXPECT_EQ(serial[k], parallel[k]) << "index " << k << " threads " << n_threads;
    }
  }
}

TEST(Sweep, EmptyBatchReturnsEmpty) {
  const std::vector<int> none;
  EXPECT_TRUE(run_sweep(none, [](const int& s) { return s; }, 4).empty());
}

TEST(Sweep, MoreThreadsThanTasks) {
  std::vector<int> scenarios{1, 2, 3};
  const std::vector<int> results =
      run_sweep(scenarios, [](const int& s) { return s * s; }, 16);
  EXPECT_EQ((std::vector<int>{1, 4, 9}), results);
}

TEST(Sweep, LowestFailingIndexIsRethrown) {
  // Two failing tasks; the rethrown exception must be index 3's regardless of
  // thread count, and every non-failing task must still have run.
  for (unsigned n_threads : {1u, 2u, 5u}) {
    std::atomic<int> completed{0};
    try {
      run_indexed_sweep(
          20,
          [&](std::size_t i) {
            if (i == 11 || i == 3) throw Error("task " + std::to_string(i) + " failed");
            completed.fetch_add(1);
          },
          n_threads);
      FAIL() << "expected the sweep to rethrow";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("task 3"), std::string::npos) << e.what();
    }
    EXPECT_EQ(18, completed.load()) << "threads " << n_threads;
  }
}

TEST(Sweep, CollectIsolatesFailuresPerSlot) {
  // Unlike run_sweep, the collect variant never throws: failing slots carry
  // their own exception, every other slot carries its result.
  std::vector<int> scenarios;
  for (int k = 0; k < 20; ++k) scenarios.push_back(k);
  for (unsigned n_threads : {1u, 2u, 5u}) {
    const auto slots = run_sweep_collect(
        scenarios,
        [](const int& s) {
          if (s == 3 || s == 11) throw Error("task " + std::to_string(s) + " failed");
          return 2 * s;
        },
        n_threads);
    ASSERT_EQ(scenarios.size(), slots.size());
    for (int k = 0; k < 20; ++k) {
      const auto& slot = slots[static_cast<std::size_t>(k)];
      if (k == 3 || k == 11) {
        EXPECT_FALSE(slot.ok());
        ASSERT_TRUE(slot.error != nullptr);
        try {
          std::rethrow_exception(slot.error);
        } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("task " + std::to_string(k)),
                    std::string::npos)
              << e.what();
        }
      } else {
        ASSERT_TRUE(slot.ok()) << "index " << k << " threads " << n_threads;
        EXPECT_EQ(2 * k, *slot.result);
        EXPECT_TRUE(slot.error == nullptr);
      }
    }
  }
}

TEST(Sweep, CollectAllSuccessAndAllFailure) {
  const std::vector<int> scenarios{1, 2, 3};
  const auto ok = run_sweep_collect(scenarios, [](const int& s) { return s; }, 2);
  for (const auto& slot : ok) EXPECT_TRUE(slot.ok());

  const auto bad = run_sweep_collect(
      scenarios, [](const int&) -> int { throw Error("boom"); }, 2);
  for (const auto& slot : bad) {
    EXPECT_FALSE(slot.ok());
    EXPECT_TRUE(slot.error != nullptr);
  }

  const std::vector<int> none;
  EXPECT_TRUE(run_sweep_collect(none, [](const int& s) { return s; }, 2).empty());
}

// End-to-end: a batch of independent transients gives identical waveform
// samples no matter how many workers ran it.
TEST(Sweep, ParallelTransientsMatchSerial) {
  struct Scenario {
    double resistance;
  };
  std::vector<Scenario> scenarios;
  for (double r : {200.0, 400.0, 800.0, 1600.0, 3200.0}) scenarios.push_back({r});

  auto final_voltage = [](const Scenario& s) {
    ckt::Netlist nl;
    const ckt::NodeId in = nl.node("in");
    const ckt::NodeId out = nl.node("out");
    nl.add_vsource(in, ckt::ground, wave::Pwl({{0.0, 0.0}, {1 * ps, 1.0}}));
    nl.add_resistor(in, out, s.resistance);
    nl.add_capacitor(out, ckt::ground, 0.5 * pf);
    TransientOptions opt;
    opt.t_stop = 0.8 * ns;
    opt.dt = 1 * ps;
    const std::array<ckt::NodeId, 1> probes{out};
    return simulate(nl, opt, probes).at(out).final_value();
  };

  const std::vector<double> serial = run_sweep(scenarios, final_voltage, 1);
  const std::vector<double> parallel = run_sweep(scenarios, final_voltage, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k], parallel[k]) << "scenario " << k;
  }
}

}  // namespace
}  // namespace rlceff::sim
