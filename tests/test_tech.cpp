// Tests for the technology substrate: wire parasitic fits against all sixteen
// printed paper cases, inverter sizing, and device calibration.
#include "tech/wire.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mosfet.h"
#include "tech/inverter.h"
#include "tech/technology.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::tech {
namespace {

using namespace rlceff::units;
using rlceff::testing::expect_rel_near;

// The field-solver substitute must reproduce every printed (R, L, C) triple.
class WireFitAgainstPaper : public ::testing::TestWithParam<PaperWireCase> {};

TEST_P(WireFitAgainstPaper, ResistanceWithinHalfPercent) {
  const PaperWireCase& c = GetParam();
  const WireModel model;
  const WireParasitics got =
      model.extract({c.length_mm * mm, c.width_um * um});
  expect_rel_near(c.parasitics.resistance, got.resistance, 0.005);
}

TEST_P(WireFitAgainstPaper, InductanceWithinTwoPercent) {
  const PaperWireCase& c = GetParam();
  const WireModel model;
  const WireParasitics got = model.extract({c.length_mm * mm, c.width_um * um});
  expect_rel_near(c.parasitics.inductance, got.inductance, 0.02);
}

TEST_P(WireFitAgainstPaper, CapacitanceWithinThreePercent) {
  const PaperWireCase& c = GetParam();
  const WireModel model;
  const WireParasitics got = model.extract({c.length_mm * mm, c.width_um * um});
  expect_rel_near(c.parasitics.capacitance, got.capacitance, 0.03);
}

INSTANTIATE_TEST_SUITE_P(AllSixteenCases, WireFitAgainstPaper,
                         ::testing::ValuesIn(paper_wire_cases().begin(),
                                             paper_wire_cases().end()),
                         [](const ::testing::TestParamInfo<PaperWireCase>& info) {
                           const auto& c = info.param;
                           return std::to_string(static_cast<int>(c.length_mm)) + "mm_" +
                                  std::to_string(static_cast<int>(c.width_um * 10.0)) +
                                  "tenth_um";
                         });

TEST(WireModel, TrendsMatchPhysics) {
  const WireModel m;
  // Wider wire: lower R, lower L (log), higher C.
  EXPECT_GT(m.resistance_per_meter(0.8 * um), m.resistance_per_meter(1.6 * um));
  EXPECT_GT(m.inductance_per_meter(0.8 * um), m.inductance_per_meter(1.6 * um));
  EXPECT_LT(m.capacitance_per_meter(0.8 * um), m.capacitance_per_meter(1.6 * um));
}

TEST(WireModel, ParasiticsScaleLinearlyWithLength) {
  const WireModel m;
  const WireParasitics a = m.extract({2 * mm, 1.6 * um});
  const WireParasitics b = m.extract({4 * mm, 1.6 * um});
  expect_rel_near(2.0 * a.resistance, b.resistance, 1e-12);
  expect_rel_near(2.0 * a.inductance, b.inductance, 1e-12);
  expect_rel_near(2.0 * a.capacitance, b.capacitance, 1e-12);
}

TEST(WireParasitics, Z0AndTimeOfFlight) {
  const WireParasitics w{72.44, 5.14 * nh, 1.10 * pf};
  EXPECT_NEAR(68.4, w.z0(), 0.1);
  EXPECT_NEAR(75.2 * ps, w.time_of_flight(), 0.1 * ps);
}

TEST(WireParasitics, Z0RequiresLAndC) {
  const WireParasitics w{100.0, 0.0, 1.0 * pf};
  EXPECT_THROW(w.z0(), Error);
}

TEST(PaperCases, LookupByGeometry) {
  const auto hit = find_paper_wire_case(5.0, 1.6);
  ASSERT_TRUE(hit.has_value());
  EXPECT_NEAR(72.44, hit->resistance, 1e-9);
  EXPECT_FALSE(find_paper_wire_case(9.0, 1.6).has_value());
}

TEST(Technology, DeviceCalibrationTargets) {
  const Technology t = Technology::cmos180();
  // NMOS Idsat ~ 650 uA/um, PMOS ~ 280 uA/um at full drive.
  const auto n = ckt::eval_nmos(t.nmos, 1 * um, t.vdd, t.vdd);
  const auto p = ckt::eval_pmos(t.pmos, 1 * um, -t.vdd, -t.vdd);
  EXPECT_NEAR(650e-6, n.id / (1.0 + t.nmos.lambda * t.vdd), 30e-6);
  EXPECT_NEAR(280e-6, -p.id / (1.0 + t.pmos.lambda * t.vdd), 20e-6);
}

TEST(Inverter, PaperSizingFootnote) {
  // Footnote 1: NMOS width = size * 0.36 um (2 * Lmin), PMOS twice as wide.
  const Technology t = Technology::cmos180();
  const Inverter inv{75.0};
  expect_rel_near(27.0 * um, inv.nmos_width(t), 1e-12);
  expect_rel_near(54.0 * um, inv.pmos_width(t), 1e-12);
  EXPECT_GT(inv.input_capacitance(t), 100 * ff);
  EXPECT_LT(inv.input_capacitance(t), 250 * ff);
}

TEST(Inverter, InstanceAddsDevicesAndParasitics) {
  const Technology t = Technology::cmos180();
  ckt::Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  const auto inst = add_inverter(nl, t, Inverter{10.0}, in, out);
  EXPECT_EQ(2u, nl.mosfets().size());
  EXPECT_EQ(1u, nl.vsources().size());
  EXPECT_EQ(3u, nl.capacitors().size());
  EXPECT_EQ(in, inst.input);
  EXPECT_EQ(out, inst.output);
  EXPECT_FALSE(nl.mosfets()[0].is_pmos);
  EXPECT_TRUE(nl.mosfets()[1].is_pmos);
  expect_rel_near(2.0, nl.mosfets()[1].width / nl.mosfets()[0].width, 1e-12);
}

TEST(Inverter, RejectsNonPositiveSize) {
  const Technology t = Technology::cmos180();
  ckt::Netlist nl;
  EXPECT_THROW(add_inverter(nl, t, Inverter{0.0}, nl.node("i"), nl.node("o")), Error);
}

}  // namespace
}  // namespace rlceff::tech
