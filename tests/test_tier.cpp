// Tests for the multi-fidelity tier subsystem: the closed-form Tier A
// estimate (shield factor, fast admittance walk, secant Ceff solve), the
// router's admission predicates and policy table, the calibrated envelope
// semantics, and the engine's tier stamping/escalation accounting.
//
// The accuracy contract (routed answers sit inside the calibrated envelope
// of the transient reference) lives in the property harness
// (PropertySuite.TierEnvelope); this file pins the mechanics.
#include "tier/analytical.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "api/engine.h"
#include "core/driver_model.h"
#include "moments/admittance.h"
#include "net/coupled.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "tier/envelope.h"
#include "tier/router.h"
#include "util/units.h"

namespace rlceff::tier {
namespace {

using namespace rlceff::units;
using rlceff::testing::expect_rel_near;

// ---------------------------------------------------------------------------
// shield_factor

TEST(TierAnalytical, ShieldFactorLimitsAndMonotonicity) {
  EXPECT_EQ(shield_factor(0.0), 0.0);
  EXPECT_EQ(shield_factor(-1.0), 0.0);
  // g(x) = 1 - (1 - e^-x)/x rises from 0 toward 1.
  double prev = 0.0;
  for (double x : {1e-6, 1e-4, 1e-2, 0.1, 1.0, 10.0, 100.0}) {
    const double g = shield_factor(x);
    EXPECT_GT(g, prev) << "x=" << x;
    EXPECT_LT(g, 1.0) << "x=" << x;
    prev = g;
  }
  EXPECT_GT(shield_factor(1e4), 0.999);
}

TEST(TierAnalytical, ShieldFactorSeriesBranchIsContinuous) {
  // The series branch below 1e-4 must meet the direct form without a jump:
  // the difference across the switch is the real slope (~1/2) times dx, not
  // a discontinuity.
  const double below = shield_factor(0.99e-4);
  const double above = shield_factor(1.01e-4);
  EXPECT_NEAR(above - below, 0.5 * 0.02e-4, 1e-8);
  expect_rel_near(0.5 * 0.99e-4, below, 1e-2);  // g(x) ~ x/2 for small x
}

// ---------------------------------------------------------------------------
// fast_net_admittance vs the Series cascade

TEST(TierAnalytical, FastAdmittanceTracksSeriesCascade) {
  // Paper Table 1 line (distributed RLC): the flattened 4-segment ladder walk
  // must reproduce the exact cascade's moments to discretization accuracy.
  const net::Net net =
      tech::line_net(*tech::find_paper_wire_case(5.0, 1.6), 20 * ff);
  const util::Series exact = moments::net_admittance(net);
  const util::Series fast = moments::fast_net_admittance(net);
  ASSERT_GE(fast.size(), 6u);
  EXPECT_NEAR(fast[0], 0.0, 1e-18);          // no DC path
  expect_rel_near(exact[1], fast[1], 1e-9);  // m1 = Ctotal is exact
  expect_rel_near(exact[2], fast[2], 0.02);
  expect_rel_near(exact[3], fast[3], 0.05);
}

TEST(TierAnalytical, FastAdmittanceExactForLumpedNets) {
  // Lumped sections are not discretized: the walk is the cascade.
  net::Section s;
  s.kind = net::SectionKind::lumped;
  s.resistance = 40.0;
  s.capacitance = 20 * ff;
  const net::Net net = net::Net::multi_section({s, s}, 15 * ff);
  const util::Series exact = moments::net_admittance(net);
  const util::Series fast = moments::fast_net_admittance(net);
  for (std::size_t k = 1; k < 6; ++k) {
    expect_rel_near(exact[k], fast[k], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// tier / policy spellings

TEST(TierNames, ParsePolicyRoundTrip) {
  for (TierPolicy p : {TierPolicy::reference, TierPolicy::balanced,
                       TierPolicy::fastest, TierPolicy::force_analytical,
                       TierPolicy::force_ceff, TierPolicy::force_reference}) {
    TierPolicy parsed;
    ASSERT_TRUE(parse_tier_policy(to_string(p), parsed)) << to_string(p);
    EXPECT_EQ(parsed, p);
  }
  TierPolicy parsed;
  EXPECT_TRUE(parse_tier_policy("a", parsed));
  EXPECT_EQ(parsed, TierPolicy::force_analytical);
  EXPECT_TRUE(parse_tier_policy("b", parsed));
  EXPECT_EQ(parsed, TierPolicy::force_ceff);
  EXPECT_TRUE(parse_tier_policy("c", parsed));
  EXPECT_EQ(parsed, TierPolicy::force_reference);
  EXPECT_FALSE(parse_tier_policy("warp-speed", parsed));
  EXPECT_FALSE(parse_tier_policy("", parsed));
}

TEST(TierNames, TierLetters) {
  EXPECT_EQ(tier_letter(Tier::analytical), 'a');
  EXPECT_EQ(tier_letter(Tier::ceff), 'b');
  EXPECT_EQ(tier_letter(Tier::reference), 'c');
}

// ---------------------------------------------------------------------------
// router policy table

TEST(TierRouter, RouteTable) {
  const Admission yes{};
  const Admission no{false, "deep_shielding"};
  EXPECT_EQ(route(TierPolicy::reference, yes, false), Tier::ceff);
  EXPECT_EQ(route(TierPolicy::reference, yes, true), Tier::reference);
  EXPECT_EQ(route(TierPolicy::balanced, yes, false), Tier::analytical);
  EXPECT_EQ(route(TierPolicy::balanced, no, false), Tier::ceff);
  EXPECT_EQ(route(TierPolicy::fastest, yes, false), Tier::analytical);
  EXPECT_EQ(route(TierPolicy::fastest, no, false), Tier::ceff);
  // Forced policies ignore the admission verdict.
  EXPECT_EQ(route(TierPolicy::force_analytical, no, false), Tier::analytical);
  EXPECT_EQ(route(TierPolicy::force_ceff, yes, false), Tier::ceff);
  EXPECT_EQ(route(TierPolicy::force_reference, yes, false), Tier::reference);
}

TEST(TierRouter, AdmissionRefusalReasons) {
  AnalyticalEstimate e;
  e.model.kind = core::ModelKind::one_ramp;
  e.model.ceff1.converged = true;
  e.shielding = 0.5;
  EXPECT_TRUE(admit_analytical(e).ok);

  AnalyticalEstimate stalled = e;
  stalled.model.ceff1.converged = false;
  EXPECT_STREQ(admit_analytical(stalled).reason, "fixed_point_stalled");

  // A stalled *second* ramp only matters on two-ramp estimates.
  AnalyticalEstimate two = e;
  two.model.kind = core::ModelKind::two_ramp;
  two.model.ceff2.converged = false;
  EXPECT_STREQ(admit_analytical(two).reason, "fixed_point_stalled");
  two.model.ceff2.converged = true;
  EXPECT_TRUE(admit_analytical(two).ok);

  AnalyticalEstimate deep = e;
  deep.shielding = 0.01;
  EXPECT_STREQ(admit_analytical(deep).reason, "deep_shielding");
}

TEST(TierRouter, GroupAdmissionScreensCouplingNotMutualInductance) {
  // Two parallel distributed RLC lines.
  auto line = [] {
    return net::Net::uniform_line(100.0, 5 * nh, 200 * ff, 20 * ff);
  };
  net::CoupledGroup light;
  light.add_net(line(), "victim");
  light.add_net(line(), "agg");
  light.couple_capacitance({0, 0}, {1, 0}, 20 * ff);
  light.couple_inductance({0, 0}, {1, 0}, 0.5);
  // Cc/(Cc+Cg) = 20/240 << 0.4: admitted, mutual inductance notwithstanding.
  EXPECT_TRUE(admit_group_analytical(light, 0).ok);

  net::CoupledGroup heavy;
  heavy.add_net(line(), "victim");
  heavy.add_net(line(), "agg");
  heavy.couple_capacitance({0, 0}, {1, 0}, 400 * ff);
  EXPECT_STREQ(admit_group_analytical(heavy, 0).reason, "coupling_heavy");
}

// ---------------------------------------------------------------------------
// envelope semantics

TEST(TierEnvelope, CheckSemantics) {
  const Envelope env{0.10, 5 * ps, 0.20, 10 * ps, 0.1};
  // Inside: 10 % + 5 ps of 100 ps allows up to 115 ps.
  EnvelopeCheck ok = check_envelope(env, 114 * ps, 100 * ps, 100 * ps, 100 * ps,
                                    -1.0, -1.0);
  EXPECT_TRUE(ok.delay_ok);
  EXPECT_TRUE(ok.slew_ok);
  EXPECT_TRUE(ok.noise_ok);  // no noise reference -> vacuously fine
  EXPECT_TRUE(ok.ok());

  EnvelopeCheck wide = check_envelope(env, 120 * ps, 100 * ps, 100 * ps,
                                      100 * ps, -1.0, -1.0);
  EXPECT_FALSE(wide.delay_ok);
  EXPECT_FALSE(wide.ok());

  // The noise figure is a bound: overstating is free, understating beyond
  // noise_abs is a violation.
  EnvelopeCheck over = check_envelope(env, 100 * ps, 100 * ps, 100 * ps,
                                      100 * ps, 0.9, 0.3);
  EXPECT_TRUE(over.noise_ok);
  EnvelopeCheck under = check_envelope(env, 100 * ps, 100 * ps, 100 * ps,
                                       100 * ps, 0.1, 0.3);
  EXPECT_FALSE(under.noise_ok);
}

TEST(TierEnvelope, ReferenceTierIsExact) {
  const Envelope ref = envelope(Tier::reference, false);
  EXPECT_EQ(ref.delay_rel, 0.0);
  EXPECT_EQ(ref.delay_abs, 0.0);
  // Cheaper tiers carry non-trivial widths.
  EXPECT_GT(envelope(Tier::analytical, false).delay_rel, 0.0);
  EXPECT_GT(envelope(Tier::ceff, true).delay_rel, 0.0);
}

// ---------------------------------------------------------------------------
// engine integration: stamping, escalation accounting, validation

class TierEngineFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    engine_ = new api::Engine(tech::Technology::cmos180());
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static api::BatchOptions fast_options() {
    api::BatchOptions opt;
    opt.deck.segments = 12;
    opt.deck.dt = 1 * ps;
    opt.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
    opt.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 1.8 * pf, 3 * pf,
                      5 * pf};
    return opt;
  }
  // A short lumped route, RC-dominated: the Tier A common case.  The token
  // inductance keeps the legacy Tier B flow happy (net::Net::metrics requires
  // an L+C path) without making Eq 9 fire.
  static api::Request rc_request(std::string label) {
    api::Request r;
    r.label = std::move(label);
    r.cell_size = 100.0;
    r.input_slew = 100 * ps;
    net::Section s;
    s.kind = net::SectionKind::lumped;
    s.resistance = 40.0;
    s.inductance = 10 * ph;
    s.capacitance = 20 * ff;
    r.net = net::Net::multi_section({s, s}, 15 * ff);
    return r;
  }
  // Table 1's 100X inductive line: Eq 9 fires, Tier A must refuse.
  static api::Request inductive_request(std::string label) {
    api::Request r;
    r.label = std::move(label);
    r.cell_size = 100.0;
    r.input_slew = 100 * ps;
    r.net = tech::line_net(*tech::find_paper_wire_case(5.0, 1.6), 20 * ff);
    return r;
  }
  static api::Engine* engine_;
};

api::Engine* TierEngineFixture::engine_ = nullptr;

TEST_F(TierEngineFixture, BalancedServesAnalyticalOnEasyNets) {
  api::Request r = rc_request("balanced-rc");
  r.tier = TierPolicy::balanced;
  const api::Outcome<api::Response> out = engine_->model(r, fast_options());
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_EQ(out.value().tier, Tier::analytical);
  EXPECT_EQ(out.value().fidelity, api::Fidelity::analytical);
  EXPECT_EQ(out.value().tier_escalations, 0u);
  EXPECT_GT(out.value().model_near.delay, 0.0);
}

TEST_F(TierEngineFixture, InductiveNetEscalatesToCeff) {
  for (TierPolicy p : {TierPolicy::balanced, TierPolicy::fastest}) {
    api::Request r = inductive_request(std::string("escalate-") + to_string(p));
    r.tier = p;
    const api::Outcome<api::Response> out = engine_->model(r, fast_options());
    ASSERT_TRUE(out.ok()) << out.error().message;
    EXPECT_EQ(out.value().tier, Tier::ceff) << to_string(p);
    EXPECT_EQ(out.value().tier_escalations, 1u) << to_string(p);
  }
}

TEST_F(TierEngineFixture, ForcedPoliciesPinTheirTier) {
  api::Request a = inductive_request("force-a");
  a.tier = TierPolicy::force_analytical;  // skips admission on purpose
  api::Request b = rc_request("force-b");
  b.tier = TierPolicy::force_ceff;
  api::Request c = rc_request("force-c");
  c.tier = TierPolicy::force_reference;
  const auto results =
      engine_->run_batch(std::vector<api::Request>{a, b, c}, fast_options());
  ASSERT_TRUE(results[0].ok()) << results[0].error().message;
  ASSERT_TRUE(results[1].ok()) << results[1].error().message;
  ASSERT_TRUE(results[2].ok()) << results[2].error().message;
  EXPECT_EQ(results[0].value().tier, Tier::analytical);
  EXPECT_EQ(results[1].value().tier, Tier::ceff);
  EXPECT_EQ(results[2].value().tier, Tier::reference);
  EXPECT_TRUE(results[2].value().has_reference);
  for (const auto& out : results) {
    EXPECT_EQ(out.value().tier_escalations, 0u);
  }
}

TEST_F(TierEngineFixture, AnalyticalCeffAgreesWithCeffTier) {
  // Tier A's secant fixed point and Tier B's damped iteration solve the same
  // equation over the same charge model; on a lumped RC net (no ladder
  // discretization) the converged Ceff and delay must agree closely.
  api::Request a = rc_request("agree-a");
  a.tier = TierPolicy::force_analytical;
  api::Request b = rc_request("agree-b");
  b.tier = TierPolicy::force_ceff;
  const api::Outcome<api::Response> ra = engine_->model(a, fast_options());
  const api::Outcome<api::Response> rb = engine_->model(b, fast_options());
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  expect_rel_near(rb.value().model.ceff1.ceff, ra.value().model.ceff1.ceff, 0.02);
  expect_rel_near(rb.value().model_near.delay, ra.value().model_near.delay, 0.05);
}

TEST_F(TierEngineFixture, ReferenceFlagIsIncompatibleWithTierPolicies) {
  api::Request r = rc_request("tier-plus-reference");
  r.tier = TierPolicy::balanced;
  r.reference = true;
  const api::Outcome<api::Response> out = engine_->model(r, fast_options());
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, api::ErrorCode::invalid_request);
}

TEST_F(TierEngineFixture, CoupledAnalyticalReportsNoiseBound) {
  auto line = [] {
    return net::Net::uniform_line(100.0, 0.0, 200 * ff, 20 * ff);
  };
  api::Request r;
  r.label = "coupled-a";
  r.cell_size = 100.0;
  r.input_slew = 100 * ps;
  r.group.add_net(line(), "victim");
  r.group.add_net(line(), "agg");
  r.group.couple_capacitance({0, 0}, {1, 0}, 20 * ff);
  r.victim = 0;
  r.tier = TierPolicy::force_analytical;
  const api::Outcome<api::Response> out = engine_->model(r, fast_options());
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_TRUE(out.value().has_noise_bound);
  const double cc = 20 * ff;
  const double cg = r.group.net_at(0).total_capacitance();
  expect_rel_near(engine_->technology().vdd * cc / (cc + cg),
                  out.value().noise_bound, 1e-9);
}

}  // namespace
}  // namespace rlceff::tier
