// Tests for the RLC-tree extension and the ref-[11] shielding tail.
#include <gtest/gtest.h>

#include <cmath>

#include "charlib/library.h"
#include "core/driver_model.h"
#include "moments/admittance.h"
#include "tech/testbench.h"
#include "tech/wire.h"
#include "test_helpers.h"
#include "util/error.h"
#include "util/units.h"

namespace rlceff::core {
namespace {

using namespace rlceff::units;
using moments::RlcBranch;
using rlceff::testing::expect_rel_near;

// A uniform line expressed as a chain of lumped branches.
RlcBranch chain_for_wire(const tech::WireParasitics& w, std::size_t sections,
                         double c_leaf) {
  const double n = static_cast<double>(sections);
  RlcBranch leaf{w.resistance / n, w.inductance / n, w.capacitance / n + c_leaf, {}};
  RlcBranch node = leaf;
  for (std::size_t k = 1; k < sections; ++k) {
    RlcBranch parent{w.resistance / n, w.inductance / n, w.capacitance / n, {node}};
    node = parent;
  }
  return node;
}

TEST(TreeMetrics, ChainMatchesUniformLine) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const RlcBranch chain = chain_for_wire(w, 20, 0.0);
  const moments::TreePathMetrics m = moments::tree_metrics(chain);
  expect_rel_near(w.z0(), m.z0, 1e-9);
  expect_rel_near(w.time_of_flight(), m.time_of_flight, 1e-9);
  expect_rel_near(w.resistance, m.path_resistance, 1e-9);
  expect_rel_near(w.capacitance, m.total_capacitance, 1e-9);
}

TEST(TreeMetrics, PicksDominantPath) {
  // Two asymmetric arms: the long arm defines the flight time.
  RlcBranch short_arm{20.0, 1 * nh, 0.3 * pf, {}};
  RlcBranch long_arm{60.0, 4 * nh, 1.0 * pf, {}};
  RlcBranch trunk{10.0, 0.5 * nh, 0.1 * pf, {short_arm, long_arm}};
  const moments::TreePathMetrics m = moments::tree_metrics(trunk);
  const double l_path = 0.5 * nh + 4 * nh;
  const double c_path = 0.1 * pf + 1.0 * pf;
  expect_rel_near(std::sqrt(l_path * c_path), m.time_of_flight, 1e-9);
  expect_rel_near(70.0, m.path_resistance, 1e-9);
  expect_rel_near(1.4 * pf, m.total_capacitance, 1e-9);
}

TEST(TreeMetrics, RejectsDegenerateTrees) {
  RlcBranch no_c{10.0, 1 * nh, 0.0, {}};
  EXPECT_THROW(moments::tree_metrics(no_c), Error);
}

class TreeModelFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    technology_ = new tech::Technology(tech::Technology::cmos180());
    charlib::CharacterizationGrid grid;
    grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
    grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 1.8 * pf, 3 * pf, 5 * pf};
    library_ = new charlib::CellLibrary();
    library_->ensure_driver(*technology_, 100.0, grid);
    library_->ensure_driver(*technology_, 25.0, grid);
  }
  static void TearDownTestSuite() {
    delete library_;
    delete technology_;
    library_ = nullptr;
    technology_ = nullptr;
  }

  static tech::Technology* technology_;
  static charlib::CellLibrary* library_;
};

tech::Technology* TreeModelFixture::technology_ = nullptr;
charlib::CellLibrary* TreeModelFixture::library_ = nullptr;

TEST_F(TreeModelFixture, ChainTreeReproducesWireModel) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(5.0, 1.6);
  const charlib::CharacterizedDriver& driver = *library_->find(100.0);

  const DriverOutputModel via_wire =
      model_driver_output(driver, 100 * ps, w, 20 * ff);
  const RlcBranch chain = chain_for_wire(w, 40, 20 * ff);
  const DriverOutputModel via_tree = model_driver_output(driver, 100 * ps, chain);

  EXPECT_EQ(via_wire.kind, via_tree.kind);
  // Lumped 40-section moments vs exact distributed moments: a few percent
  // (Ceff1 is the most sensitive, living entirely in the early transient).
  expect_rel_near(via_wire.f, via_tree.f, 0.02);
  expect_rel_near(via_wire.ceff1.ceff, via_tree.ceff1.ceff, 0.08);
  expect_rel_near(via_wire.ceff2.ceff, via_tree.ceff2.ceff, 0.08);
  expect_rel_near(via_wire.t50, via_tree.t50, 0.05);
}

TEST_F(TreeModelFixture, BranchedNetEndToEnd) {
  // A trunk splitting into two arms with receiver caps at the leaves.
  const tech::WireModel wires;
  const tech::WireParasitics trunk_w = wires.extract({2 * mm, 1.6 * um});
  const tech::WireParasitics arm_w = wires.extract({2.5 * mm, 1.2 * um});
  RlcBranch arm_a{arm_w.resistance, arm_w.inductance, arm_w.capacitance + 20 * ff, {}};
  RlcBranch arm_b = arm_a;
  RlcBranch net{trunk_w.resistance, trunk_w.inductance, trunk_w.capacitance,
                {arm_a, arm_b}};

  const charlib::CharacterizedDriver& driver = *library_->find(100.0);
  const DriverOutputModel model = model_driver_output(driver, 100 * ps, net);
  EXPECT_GT(model.f, 0.0);
  EXPECT_TRUE(model.ceff1.converged);

  // Reference: simulate the driver into the discretized tree.
  tech::DeckOptions deck;
  deck.dt = 0.5 * ps;
  deck.t_stop = 2 * ns;
  const tech::TreeSimResult sim = tech::simulate_driver_tree(
      *technology_, tech::Inverter{100.0}, 100 * ps, net, deck, 30);
  ASSERT_EQ(2u, sim.leaves.size());

  const auto near = wave::measure_rising_edge(sim.near_end, 0.0, technology_->vdd);
  const double ref_delay = near.t50 - sim.input_time_50;
  const double model_delay = model.t50;
  // Branched nets stress the single-Z0 assumption: the branch point halves
  // the impedance, so the reflection pattern is richer than one line's.
  // The model stays within the ~30 % band (the sink replay below is much
  // tighter, which is what timing actually consumes).
  EXPECT_LT(std::abs(model_delay - ref_delay) / ref_delay, 0.30);

  // Symmetric arms must produce identical sink waveforms.
  const auto leaf_a = wave::measure_rising_edge(sim.leaves[0], 0.0, technology_->vdd);
  const auto leaf_b = wave::measure_rising_edge(sim.leaves[1], 0.0, technology_->vdd);
  expect_rel_near(leaf_a.t50, leaf_b.t50, 1e-6);
}

TEST_F(TreeModelFixture, ReplayThroughTreeMatchesSinkDelay) {
  const tech::WireModel wires;
  const tech::WireParasitics trunk_w = wires.extract({2 * mm, 2.0 * um});
  const tech::WireParasitics arm_w = wires.extract({2 * mm, 1.2 * um});
  RlcBranch arm{arm_w.resistance, arm_w.inductance, arm_w.capacitance + 20 * ff, {}};
  RlcBranch net{trunk_w.resistance, trunk_w.inductance, trunk_w.capacitance,
                {arm, arm}};

  const charlib::CharacterizedDriver& driver = *library_->find(100.0);
  const DriverOutputModel model = model_driver_output(driver, 100 * ps, net);

  tech::DeckOptions deck;
  deck.dt = 0.5 * ps;
  deck.t_stop = 2 * ns;
  const auto ref = tech::simulate_driver_tree(*technology_, tech::Inverter{100.0},
                                              100 * ps, net, deck, 30);
  // Replay the modeled waveform (shifted to deck time) through the tree.
  std::vector<std::pair<double, double>> pts = model.waveform.points();
  for (auto& [t, v] : pts) t += ref.input_time_50;
  const auto replay = tech::simulate_source_tree(wave::Pwl(std::move(pts)), net, deck, 30);

  const auto ref_leaf = wave::measure_rising_edge(ref.leaves[0], 0.0, technology_->vdd);
  const auto mod_leaf = wave::measure_rising_edge(replay.leaves[0], 0.0, technology_->vdd);
  const double ref_delay = ref_leaf.t50 - ref.input_time_50;
  const double mod_delay = mod_leaf.t50 - ref.input_time_50;
  EXPECT_LT(std::abs(mod_delay - ref_delay) / ref_delay, 0.12);
}

TEST_F(TreeModelFixture, ShieldingTailActivatesForWeakDriverLongLine) {
  // 25X on a 7 mm line: strong resistive shielding.
  const tech::WireParasitics w = *tech::find_paper_wire_case(7.0, 1.6);
  const charlib::CharacterizedDriver& driver = *library_->find(25.0);

  DriverModelOptions with_tail;
  with_tail.shielding_tail = true;
  const DriverOutputModel m = model_driver_output(driver, 100 * ps, w, 20 * ff, with_tail);
  ASSERT_EQ(ModelKind::one_ramp, m.kind);
  EXPECT_TRUE(m.has_shielding_tail);
  EXPECT_GT(m.tail_tau, 0.0);

  // The tail only slows the 90 % point; the anchored 50 % delay is unchanged.
  DriverModelOptions no_tail = with_tail;
  no_tail.shielding_tail = false;
  const DriverOutputModel plain =
      model_driver_output(driver, 100 * ps, w, 20 * ff, no_tail);
  EXPECT_FALSE(plain.has_shielding_tail);
  expect_rel_near(plain.t50, m.t50, 1e-9);

  const auto wt = wave::measure_rising_edge(
      m.waveform.to_waveform(m.waveform.end_time() + 1 * ns), 0.0, m.vdd);
  const auto wp = wave::measure_rising_edge(
      plain.waveform.to_waveform(plain.waveform.end_time() + 1 * ns), 0.0, m.vdd);
  EXPECT_GT(wt.t90, wp.t90);
}

TEST_F(TreeModelFixture, ShieldingTailImprovesSlewAccuracy) {
  const tech::WireParasitics w = *tech::find_paper_wire_case(7.0, 1.6);
  const charlib::CharacterizedDriver& driver = *library_->find(25.0);

  tech::DeckOptions deck;
  deck.segments = 60;
  deck.dt = 0.5 * ps;
  deck.t_stop = 4 * ns;
  const auto sim = tech::simulate_driver_line(*technology_, tech::Inverter{25.0},
                                              100 * ps, w, deck);
  const auto ref = wave::measure_rising_edge(sim.near_end, 0.0, technology_->vdd);

  DriverModelOptions with_tail;
  with_tail.shielding_tail = true;
  DriverModelOptions no_tail;
  no_tail.shielding_tail = false;
  const auto m_tail = model_driver_output(driver, 100 * ps, w, 20 * ff, with_tail);
  const auto m_plain = model_driver_output(driver, 100 * ps, w, 20 * ff, no_tail);

  const auto e_tail = wave::measure_rising_edge(
      m_tail.waveform.to_waveform(m_tail.waveform.end_time() + 1 * ns), 0.0,
      technology_->vdd);
  const auto e_plain = wave::measure_rising_edge(
      m_plain.waveform.to_waveform(m_plain.waveform.end_time() + 1 * ns), 0.0,
      technology_->vdd);

  const double ref_slew = ref.transition_10_90();
  const double err_tail = std::abs(e_tail.transition_10_90() - ref_slew);
  const double err_plain = std::abs(e_plain.transition_10_90() - ref_slew);
  EXPECT_LT(err_tail, err_plain);
}

}  // namespace
}  // namespace rlceff::core
