// Unit tests for waveforms, edge measurements, and PWL sources.
#include "waveform/waveform.h"

#include <gtest/gtest.h>

#include "test_helpers.h"
#include "util/error.h"
#include "waveform/pwl.h"

namespace rlceff::wave {
namespace {

using rlceff::testing::expect_rel_near;

TEST(Waveform, InterpolationAndClamping) {
  Waveform w({0.0, 1.0, 2.0}, {0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(0.0, w.value_at(-1.0));
  EXPECT_DOUBLE_EQ(1.0, w.value_at(0.5));
  EXPECT_DOUBLE_EQ(2.0, w.value_at(1.5));
  EXPECT_DOUBLE_EQ(2.0, w.value_at(5.0));
}

TEST(Waveform, RejectsNonIncreasingTimes) {
  EXPECT_THROW(Waveform({0.0, 0.0}, {0.0, 1.0}), Error);
  Waveform w;
  w.append(1.0, 0.0);
  EXPECT_THROW(w.append(1.0, 1.0), Error);
}

TEST(Waveform, FirstCrossingInterpolates) {
  Waveform w({0.0, 10.0}, {0.0, 1.0});
  const auto t = w.first_crossing(0.25, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(2.5, *t);
  EXPECT_FALSE(w.first_crossing(0.25, false).has_value());
}

TEST(Waveform, FirstCrossingOnNonMonotonicPicksEarliest) {
  // Rings above and below 0.5 several times.
  Waveform w({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 0.8, 0.4, 0.9, 0.7});
  const auto t = w.first_crossing(0.5, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(0.625, *t, 1e-12);
  const auto last = w.last_crossing(0.5, true);
  ASSERT_TRUE(last.has_value());
  EXPECT_NEAR(2.2, *last, 1e-12);
}

TEST(Waveform, MeasureRisingEdgeOnRamp) {
  // Pure ramp 0 -> 1.8 over 100: t10 = 10, t50 = 50, t90 = 90.
  Waveform w({0.0, 100.0}, {0.0, 1.8});
  const EdgeTiming e = measure_rising_edge(w, 0.0, 1.8);
  EXPECT_NEAR(10.0, e.t10, 1e-12);
  EXPECT_NEAR(50.0, e.t50, 1e-12);
  EXPECT_NEAR(90.0, e.t90, 1e-12);
  EXPECT_NEAR(80.0, e.transition_10_90(), 1e-12);
  EXPECT_NEAR(100.0, e.ramp_transition(), 1e-12);
}

TEST(Waveform, MeasureFallingEdge) {
  Waveform w({0.0, 100.0}, {1.8, 0.0});
  const EdgeTiming e = measure_falling_edge(w, 1.8, 0.0);
  EXPECT_NEAR(10.0, e.t10, 1e-12);
  EXPECT_NEAR(50.0, e.t50, 1e-12);
  EXPECT_NEAR(90.0, e.t90, 1e-12);
}

TEST(Waveform, MeasureIncompleteEdgeThrows) {
  Waveform w({0.0, 100.0}, {0.0, 0.5});
  EXPECT_THROW(measure_rising_edge(w, 0.0, 1.8), Error);
}

TEST(Waveform, OvershootMeasurement) {
  Waveform w({0.0, 1.0, 2.0}, {0.0, 2.1, 1.8});
  EXPECT_NEAR(0.3, overshoot(w, 1.8), 1e-12);
  Waveform flat({0.0, 1.0}, {0.0, 1.8});
  EXPECT_DOUBLE_EQ(0.0, overshoot(flat, 1.8));
}

TEST(Waveform, ShiftPreservesShape) {
  Waveform w({0.0, 1.0}, {0.0, 1.0});
  const Waveform s = w.shifted(5.0);
  EXPECT_DOUBLE_EQ(5.0, s.time(0));
  EXPECT_DOUBLE_EQ(0.5, s.value_at(5.5));
}

TEST(Pwl, RampConstruction) {
  const Pwl r = ramp(10.0, 100.0, 0.0, 1.8);
  EXPECT_DOUBLE_EQ(0.0, r.value_at(5.0));
  EXPECT_DOUBLE_EQ(0.9, r.value_at(60.0));
  EXPECT_DOUBLE_EQ(1.8, r.value_at(200.0));
}

TEST(Pwl, TwoRampMatchesEq2) {
  // Eq 2 with f = 0.6, Tr1 = 50, Tr2 = 200, Vdd = 1.8.
  const double f = 0.6;
  const double tr1 = 50.0;
  const double tr2 = 200.0;
  const double vdd = 1.8;
  const Pwl w = two_ramp(0.0, f, tr1, tr2, vdd);

  // First piece: V = Vdd * t / Tr1 on (0, f Tr1).
  EXPECT_NEAR(vdd * 20.0 / tr1, w.value_at(20.0), 1e-12);
  // Breakpoint at f * Vdd.
  EXPECT_NEAR(f * vdd, w.value_at(f * tr1), 1e-12);
  // Second piece: V = Vdd t / Tr2 + (1 - Tr1/Tr2) f Vdd.
  const double t = 100.0;
  EXPECT_NEAR(vdd * t / tr2 + (1.0 - tr1 / tr2) * f * vdd, w.value_at(t), 1e-12);
  // Completes at f Tr1 + (1-f) Tr2.
  EXPECT_NEAR(vdd, w.value_at(f * tr1 + (1.0 - f) * tr2), 1e-12);
}

TEST(Pwl, TwoRampRejectsBadBreakpoint) {
  EXPECT_THROW(two_ramp(0.0, 0.0, 1.0, 1.0, 1.8), Error);
  EXPECT_THROW(two_ramp(0.0, 1.0, 1.0, 1.0, 1.8), Error);
}

TEST(Pwl, ThreePieceHoldsPlateau) {
  const Pwl w = three_piece(0.0, 0.5, 100.0, 40.0, 200.0, 1.8);
  EXPECT_NEAR(0.9, w.value_at(50.0), 1e-12);   // end of ramp 1
  EXPECT_NEAR(0.9, w.value_at(70.0), 1e-12);   // on the plateau
  EXPECT_NEAR(0.9, w.value_at(90.0), 1e-12);   // plateau end
  EXPECT_NEAR(1.8, w.value_at(190.0), 1e-12);  // 90 + 0.5*200
}

TEST(Pwl, ThreePieceWithZeroPlateauIsTwoRamp) {
  const Pwl a = three_piece(0.0, 0.5, 100.0, 0.0, 200.0, 1.8);
  const Pwl b = two_ramp(0.0, 0.5, 100.0, 200.0, 1.8);
  for (double t = 0.0; t <= 220.0; t += 7.0) {
    EXPECT_NEAR(b.value_at(t), a.value_at(t), 1e-12) << "t=" << t;
  }
}

TEST(Pwl, FallingMirror) {
  const Pwl rising = two_ramp(0.0, 0.6, 50.0, 200.0, 1.8);
  const Pwl falling = falling_from_rising(rising, 1.8);
  for (double t = 0.0; t <= 150.0; t += 11.0) {
    EXPECT_NEAR(1.8 - rising.value_at(t), falling.value_at(t), 1e-12);
  }
}

TEST(Pwl, SampleAndToWaveformAgree) {
  const Pwl w = two_ramp(10.0, 0.6, 50.0, 200.0, 1.8);
  const Waveform exact = w.to_waveform(300.0);
  const Waveform sampled = w.sample(0.0, 300.0, 1.0);
  for (double t = 0.0; t <= 300.0; t += 13.0) {
    EXPECT_NEAR(exact.value_at(t), sampled.value_at(t), 1e-9) << "t=" << t;
  }
}

// Edge cases the property generator's decks hit: empty descriptions,
// single-point (DC) sources, duplicate timestamps from collapsed plateaus,
// and outright non-monotone input.
TEST(Pwl, EmptyConstructionAndAccessorsThrow) {
  EXPECT_THROW(Pwl(std::vector<std::pair<double, double>>{}), Error);
  const Pwl empty;  // default-constructed: allowed, but every accessor throws
  EXPECT_TRUE(empty.empty());
  EXPECT_THROW(empty.value_at(0.0), Error);
  EXPECT_THROW(empty.start_time(), Error);
  EXPECT_THROW(empty.end_time(), Error);
  EXPECT_THROW(empty.final_value(), Error);
  EXPECT_THROW(empty.to_waveform(1.0), Error);
}

TEST(Pwl, SinglePointIsConstant) {
  // What a held-low coupled-deck input looks like: one breakpoint, flat
  // extension on both sides.
  const Pwl hold({{5.0, 1.8}});
  EXPECT_DOUBLE_EQ(1.8, hold.value_at(-100.0));
  EXPECT_DOUBLE_EQ(1.8, hold.value_at(5.0));
  EXPECT_DOUBLE_EQ(1.8, hold.value_at(1e9));
  EXPECT_DOUBLE_EQ(5.0, hold.start_time());
  EXPECT_DOUBLE_EQ(5.0, hold.end_time());
  EXPECT_DOUBLE_EQ(1.8, hold.final_value());
  const Waveform w = hold.to_waveform(10.0);
  EXPECT_DOUBLE_EQ(1.8, w.value_at(0.0));
  EXPECT_DOUBLE_EQ(1.8, w.value_at(10.0));
}

TEST(Pwl, DuplicateTimestampRejectionNamesTheIndex) {
  try {
    Pwl bad({{0.0, 0.0}, {1.0, 0.5}, {1.0, 1.0}});
    FAIL() << "duplicate timestamp accepted";
  } catch (const Error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("time[2]"), std::string::npos) << message;
    EXPECT_NE(message.find("time[1]"), std::string::npos) << message;
  }
}

TEST(Pwl, NonMonotoneTimesRejected) {
  EXPECT_THROW(Pwl({{0.0, 0.0}, {2.0, 1.0}, {1.0, 0.5}}), Error);
  EXPECT_THROW(ramp(0.0, -1.0, 0.0, 1.8), Error);
  EXPECT_THROW(ramp(0.0, 0.0, 0.0, 1.8), Error);
}

TEST(Pwl, MeasuredSlewOfTwoRampCombinesBothSlopes) {
  // f = 0.6 > 0.5: t10 and t50 on ramp 1, t90 on ramp 2.
  const double f = 0.6;
  const double tr1 = 50.0;
  const double tr2 = 200.0;
  const Pwl w = two_ramp(0.0, f, tr1, tr2, 1.8);
  const EdgeTiming e = measure_rising_edge(w.to_waveform(400.0), 0.0, 1.8);
  EXPECT_NEAR(0.1 * tr1, e.t10, 1e-9);
  EXPECT_NEAR(0.5 * tr1, e.t50, 1e-9);
  // t90: breakpoint time + (0.9 - f) * tr2.
  EXPECT_NEAR(f * tr1 + (0.9 - f) * tr2, e.t90, 1e-9);
}

}  // namespace
}  // namespace rlceff::wave
