#!/usr/bin/env python3
"""Diff the metric key set the perf benches declare against BENCH_perf.json.

Usage: check_bench_keys.py <BENCH_perf.json> <declared-keys.txt>

<declared-keys.txt> holds one metric name per line, the concatenated output
of every perf bench's --list-metrics mode.  The checked-in trajectory file
must carry exactly that key set: a missing key means the checked-in file is
stale (a bench grew a metric and BENCH_perf.json was not regenerated), an
extra key means a bench dropped or renamed a metric the file still carries.
Either way CI would be gating on numbers no bench produces, so both fail.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    bench_path, keys_path = sys.argv[1], sys.argv[2]

    with open(bench_path) as f:
        doc = json.load(f)
    checked_in = {m["name"] for m in doc["metrics"]}

    with open(keys_path) as f:
        declared = {line.strip() for line in f if line.strip()}

    missing = sorted(declared - checked_in)
    extra = sorted(checked_in - declared)
    for name in missing:
        print(f"check_bench_keys: '{name}' is declared by a bench but missing "
              f"from {bench_path} (regenerate the checked-in file)",
              file=sys.stderr)
    for name in extra:
        print(f"check_bench_keys: '{name}' is in {bench_path} but no bench "
              f"declares it (stale key, or --list-metrics out of date)",
              file=sys.stderr)
    if missing or extra:
        return 1
    print(f"check_bench_keys: {len(declared)} metric keys match {bench_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
