#!/usr/bin/env python3
"""Cross-solver smoke diff for rlceff_cli --json output.

Usage: check_solver_smoke.py auto.json dense.json banded.json sparse.json

The same deck is run with --reference under each --solver override; this
script asserts that every run succeeded, that each forced run reports the
forced backend on every reference-backed net, and that the model and
reference delay/slew figures agree across backends to well under the printed
precision (the backends themselves agree to LU roundoff, so any visible
divergence is a solver bug, not noise).
"""
import json
import sys

TOL_PS = 0.01  # generous vs the ~1e-5 ps the backends actually differ by


def fail(msg):
    print(f"solver smoke: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("failed", 1) != 0:
        fail(f"{path}: {doc.get('failed')} net(s) failed")
    for net in doc["nets"]:
        if not net.get("ok"):
            fail(f"{path}: net {net.get('label')} not ok")
        for key in ("solver", "ref_delay_ps", "ref_slew_ps", "delay_ps", "slew_ps"):
            if key not in net:
                fail(f"{path}: net {net.get('label')} missing '{key}'")
    return doc["nets"]


def main(argv):
    if len(argv) != 5:
        fail("expected 4 json files: auto dense banded sparse")
    runs = {name: load(path)
            for name, path in zip(("auto", "dense", "banded", "sparse"), argv[1:])}

    baseline = runs["auto"]
    for name, nets in runs.items():
        if [n["label"] for n in nets] != [n["label"] for n in baseline]:
            fail(f"{name}: net list differs from the auto run")
        for net in nets:
            if name != "auto" and net["solver"] != name:
                fail(f"{name}: net {net['label']} reports solver "
                     f"'{net['solver']}', expected '{name}'")
        for net, ref in zip(nets, baseline):
            for key in ("delay_ps", "slew_ps", "ref_delay_ps", "ref_slew_ps"):
                if abs(net[key] - ref[key]) > TOL_PS:
                    fail(f"{name}: net {net['label']} {key} = {net[key]} "
                         f"vs auto {ref[key]} (tol {TOL_PS} ps)")

    solvers = sorted({n["solver"] for n in baseline})
    print(f"solver smoke OK: {len(baseline)} nets agree across "
          f"auto/dense/banded/sparse (auto picked: {', '.join(solvers)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
