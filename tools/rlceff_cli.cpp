// rlceff_cli — the service-shaped entry point: read a scenario deck, run it
// through api::Engine::run_batch, print per-net delay/slew.
//
// Deck format (plain text, '#' comments):
//
//   # label  driver_size  slew_ps  length_mm  width_um  cload_ff
//   net0     100          100      5.0        1.6       20
//
// plus two optional stanza kinds for coupled nets:
//
//   couple <netA> <netB> <cc_ff> [k [secA secB]]
//                                        distributed coupling cap (and
//                                        optional inductive coefficient)
//                                        between two previously listed nets;
//                                        secA/secB address the depth-first
//                                        sections the elements span (default
//                                        0); a zero cc_ff or k field means
//                                        the line carries only the other
//                                        element, and repeated lines on one
//                                        section pair accumulate
//   aggressor <net> rise|fall|quiet      mark a coupled net as an aggressor
//                                        (rise switches with the victims,
//                                        fall against them, quiet holds)
//
// and the explicit-parasitics form the property harness's replay decks use
// for topologies geometry lines cannot express (tapers, trees, exact R/L/C):
//
//   xnet <label> <driver_size> <slew_ps>    declare an explicit net
//   xsec <label> <path> <r_ohm> <l_nh> <c_ff> [lumped]
//                                           append one wire section to the
//                                           branch at <path> ("root",
//                                           "root/0", "root/1/0", ...)
//   xload <label> <path> <cload_ff>         lumped receiver at the branch end
//
// Nets connected by `couple` lines form one coupled group; every member not
// marked as an aggressor is a victim and gets its own result slot (modeled
// via Miller-factor decoupling; with --reference also simulated as the full
// coupled system, reporting delay pushout and quiet-victim peak noise).
// Aggressors only shape their victims' slots and are not reported.
//
// Geometry is turned into RLC parasitics by the built-in wire model (the
// same fit the paper benches use).  Failed nets are reported with their
// structured error code and do not abort the rest of the batch.
//
// Exit codes: 0 all nets succeeded, 1 usage/deck errors, 2 duplicate net
// labels in the deck or failed result slots.
//
// Usage:
//   rlceff_cli [options] <deck-file>
//     --library <path>   load the cell cache from <path> before the run and
//                        save it back afterwards (repeated invocations skip
//                        re-characterization)
//     --grid small       use a small characterization grid (CI/smoke runs)
//     --reference        also run the transient reference and print errors
//     --threads <n>      sweep pool width (default: hardware concurrency)
//     --json             machine-readable output (per-net delay/slew/noise
//                        and error slots) instead of the text table
//     --solver <kind>    linear-solver backend for reference transients:
//                        auto (default; picks dense, banded or sparse from
//                        the deck's size and sparsity), or an explicit
//                        dense|banded|sparse to force one.  --json reports
//                        the backend per reference-backed net
//     --deadline-ms <t>  per-net wall-clock budget; a net that exceeds it
//                        fails with error code deadline_exceeded (exit 2)
//     --max-steps <n>    per-net transient step budget (reference runs);
//                        exhaustion fails the net with resource_exhausted
//     --degrade          instead of failing, budget-exhausted nets fall down
//                        the fidelity ladder (Ceff model, then the moments-
//                        only floor); degraded slots are flagged in the
//                        output and do not count as failures
//     --lint             lint-only mode: run the full static-diagnostics
//                        pass (connectivity, physicality, conditioning,
//                        model validity — src/lint/) over every slot without
//                        simulating or characterizing anything.  Text mode
//                        prints one formatted line per finding; --json emits
//                        the diagnostics as structured records (code,
//                        severity, family, path, message, hint).  Exit 0
//                        when no slot has an error-severity finding, 2
//                        otherwise (warn/info never fail the run)
//     --tier <policy>    multi-fidelity cascade policy (tier/tier.h):
//                        balanced (cheapest tier whose calibrated envelope
//                        admits each net, escalating A->B->C), fastest (A
//                        when admitted, B otherwise, never C), or a forced
//                        tier a|b|c (force_analytical / force_ceff /
//                        force_reference).  Default: no routing — requests
//                        behave exactly as before the cascade existed.
//                        Incompatible with --reference (use --tier c).
//                        --json reports the serving tier and escalation
//                        count per net plus a per-tier count summary; text
//                        mode prints the summary as a trailing comment
//     --far-end          model-only far-end replay: each uncoupled slot
//                        replays its modeled driver waveform through the net
//                        and reports the far-end delay/slew (the paper's
//                        Fig-6 flow) without running the full transient
//                        reference.  Incompatible with --reference (which
//                        computes the far end itself) and --tier.  Coupled
//                        victims stay near-end-only.
//     --batch-scenarios on|off
//                        shared-factorization scenario batching for the
//                        --far-end replays (default on): equal-topology
//                        slots are grouped, factored once, and advanced as
//                        one blocked multi-RHS solve.  Waveforms are
//                        bitwise-identical either way; off forces the
//                        per-slot scalar path (debugging/perf comparison)
//     --lint-screen      normal run, but with the Engine admission screen
//                        armed at warn severity and the deep passes enabled:
//                        slots with warn-or-worse findings fail with error
//                        code lint_rejected before any solve.  (Error-grade
//                        structural breakage already fails at net
//                        construction with invalid_request; the screen's
//                        value here is catching the simulatable-but-
//                        suspicious decks — near-limit coupling, extreme
//                        stiffness — before they burn a solve.)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "lint/lint.h"
#include "sim/transient.h"
#include "tech/wire.h"
#include "tier/tier.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct CliOptions {
  std::string deck_path;
  std::string library_path;  // empty = no persistence
  bool small_grid = false;
  bool reference = false;
  bool json = false;
  bool degrade = false;
  double deadline_ms = 0.0;      // <= 0: unlimited
  long long max_steps = 0;       // <= 0: unlimited
  unsigned n_threads = 0;
  sim::SolverKind solver = sim::SolverKind::automatic;
  tier::TierPolicy tier = tier::TierPolicy::reference;  // no routing
  bool lint = false;         // lint-only mode: diagnose, never simulate
  bool lint_screen = false;  // normal run with the admission screen armed
  bool far_end = false;      // model-only far-end replay per uncoupled slot
  bool batch_scenarios = true;  // shared-factorization replay grouping
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--library <path>] [--grid small|standard] "
               "[--reference] [--threads <n>] [--json] "
               "[--solver auto|dense|banded|sparse] [--deadline-ms <t>] "
               "[--max-steps <n>] [--degrade] [--lint] [--lint-screen] "
               "[--tier balanced|fastest|a|b|c] [--far-end] "
               "[--batch-scenarios on|off] <deck-file>\n",
               argv0);
}

bool parse_number(const std::string& token, double& out);

bool parse_args(int argc, char** argv, CliOptions& opt) {
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* { return k + 1 < argc ? argv[++k] : nullptr; };
    if (arg == "--library") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.library_path = v;
    } else if (arg == "--grid") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "small") == 0) {
        opt.small_grid = true;
      } else if (std::strcmp(v, "standard") != 0) {
        std::fprintf(stderr, "unknown grid '%s' (want small|standard)\n", v);
        return false;
      }
    } else if (arg == "--reference") {
      opt.reference = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.n_threads = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--solver") {
      const char* v = next();
      if (v == nullptr) return false;
      try {
        opt.solver = sim::solver_kind_from_string(v);
      } catch (const Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return false;
      }
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (v == nullptr || !parse_number(v, opt.deadline_ms) || opt.deadline_ms <= 0.0) {
        std::fprintf(stderr, "--deadline-ms needs a positive number\n");
        return false;
      }
    } else if (arg == "--max-steps") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.max_steps = std::atoll(v);
      if (opt.max_steps <= 0) {
        std::fprintf(stderr, "--max-steps needs a positive integer\n");
        return false;
      }
    } else if (arg == "--degrade") {
      opt.degrade = true;
    } else if (arg == "--tier") {
      const char* v = next();
      if (v == nullptr || !tier::parse_tier_policy(v, opt.tier)) {
        std::fprintf(stderr,
                     "--tier needs one of: reference, balanced, fastest, "
                     "force_analytical|a, force_ceff|b, force_reference|c\n");
        return false;
      }
    } else if (arg == "--lint") {
      opt.lint = true;
    } else if (arg == "--lint-screen") {
      opt.lint_screen = true;
    } else if (arg == "--far-end") {
      opt.far_end = true;
    } else if (arg == "--batch-scenarios") {
      const char* v = next();
      if (v == nullptr ||
          (std::strcmp(v, "on") != 0 && std::strcmp(v, "off") != 0)) {
        std::fprintf(stderr, "--batch-scenarios needs on or off\n");
        return false;
      }
      opt.batch_scenarios = std::strcmp(v, "on") == 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else if (opt.deck_path.empty()) {
      opt.deck_path = arg;
    } else {
      std::fprintf(stderr, "more than one deck file given\n");
      return false;
    }
  }
  if (opt.reference && opt.tier != tier::TierPolicy::reference) {
    std::fprintf(stderr,
                 "--reference is incompatible with --tier; use --tier c to pin "
                 "the transient reference\n");
    return false;
  }
  if (opt.far_end &&
      (opt.reference || opt.tier != tier::TierPolicy::reference)) {
    std::fprintf(stderr,
                 "--far-end is the model-only replay; --reference computes the "
                 "far end itself and a tier policy routes around it\n");
    return false;
  }
  return !opt.deck_path.empty();
}

// One explicit wire section / receiver load of an `xnet` (paths are child
// index chains below the root branch, already parsed).
struct DeckSection {
  std::vector<std::size_t> path;
  double r_ohm = 0.0;
  double l_nh = 0.0;
  double c_ff = 0.0;
  bool lumped = false;
};

struct DeckLoad {
  std::vector<std::size_t> path;
  double cload_ff = 0.0;
};

// One parsed deck net — either the geometry form (length/width through the
// wire model) or the explicit-parasitics form (xnet/xsec/xload stanzas).
// Net construction is deferred to request build time so a malformed
// geometry surfaces as a per-net Outcome failure, not a deck-parse abort.
struct DeckNet {
  std::string label;
  double driver_size = 0.0;
  double slew_ps = 0.0;
  double length_mm = 0.0;
  double width_um = 0.0;
  double cload_ff = 0.0;
  bool explicit_net = false;
  std::vector<DeckSection> sections;
  std::vector<DeckLoad> loads;
};

struct DeckCouple {
  std::string a;
  std::string b;
  double cc_ff = 0.0;
  double k = 0.0;          // optional inductive coupling coefficient
  std::size_t sec_a = 0;   // optional depth-first section addresses
  std::size_t sec_b = 0;
};

struct Deck {
  std::vector<DeckNet> nets;
  std::vector<DeckCouple> couples;
  std::map<std::string, std::string> aggressors;  // label -> rise|fall|quiet
};

// Branch fan-outs and section counts are tiny in practice; bounding the
// parsed indices keeps a corrupt deck from driving children.resize() into
// gigabytes (or strtoul's ULONG_MAX clamp into out-of-bounds indexing).
constexpr unsigned long kMaxDeckIndex = 4096;

// Parses "root", "root/0", "root/1/0", ... into the child index chain below
// the root branch.  Returns false on malformed or absurd paths.
bool parse_branch_path(const std::string& text, std::vector<std::size_t>& out) {
  out.clear();
  if (text == "root") return true;
  if (text.rfind("root/", 0) != 0) return false;
  std::size_t begin = 5;
  while (begin <= text.size()) {
    const std::size_t slash = text.find('/', begin);
    const std::string part = text.substr(begin, slash == std::string::npos
                                                    ? std::string::npos
                                                    : slash - begin);
    if (part.empty()) return false;
    char* end = nullptr;
    const unsigned long index = std::strtoul(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0' || index > kMaxDeckIndex) return false;
    out.push_back(static_cast<std::size_t>(index));
    if (slash == std::string::npos) return true;
    begin = slash + 1;
  }
  return false;
}

// Strict numeric token parse (strtod accepting the whole token).
bool parse_number(const std::string& token, double& out) {
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

// Strict field extraction for the explicit-parasitics stanzas: a whole
// whitespace-delimited token must parse as a number ("20.5.5" is a typo,
// not a 20.5 followed by ignorable junk).
bool next_number(std::istringstream& fields, double& out) {
  std::string token;
  return (fields >> token) && parse_number(token, out);
}

bool at_line_end(std::istringstream& fields) {
  std::string trailing;
  return !(fields >> trailing);
}

// Returns 0 on success, 1 on malformed decks, 2 on duplicate net labels.
int read_deck(const std::string& path, Deck& deck) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open deck file: %s\n", path.c_str());
    return 1;
  }
  auto net_named = [&deck](const std::string& label) -> DeckNet* {
    for (DeckNet& net : deck.nets) {
      if (net.label == label) return &net;
    }
    return nullptr;
  };
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string head;
    if (!(fields >> head)) continue;  // blank/comment-only line

    if (head == "couple") {
      DeckCouple couple;
      if (!(fields >> couple.a >> couple.b >> couple.cc_ff)) {
        std::fprintf(stderr,
                     "%s:%zu: expected 'couple netA netB cc_ff [k [secA secB]]'\n",
                     path.c_str(), line_no);
        return 1;
      }
      // The trailing fields are optional, but a malformed token must not be
      // silently dropped as "absent".
      std::vector<std::string> rest;
      for (std::string token; fields >> token;) rest.push_back(token);
      if (rest.size() != 0 && rest.size() != 1 && rest.size() != 3) {
        std::fprintf(stderr,
                     "%s:%zu: expected 'couple netA netB cc_ff [k [secA secB]]'\n",
                     path.c_str(), line_no);
        return 1;
      }
      if (!rest.empty() && !parse_number(rest[0], couple.k)) {
        std::fprintf(stderr, "%s:%zu: malformed coupling coefficient '%s'\n",
                     path.c_str(), line_no, rest[0].c_str());
        return 1;
      }
      if (rest.size() == 3) {
        double sec_a = 0.0;
        double sec_b = 0.0;
        // Bound *before* casting: converting a NaN or out-of-range double
        // to size_t is undefined behavior, so the range check must run on
        // the doubles (the >= / <= pair also rejects NaN).
        auto valid_index = [](double v) {
          return v >= 0.0 && v <= static_cast<double>(kMaxDeckIndex) &&
                 v == std::floor(v);
        };
        if (!parse_number(rest[1], sec_a) || !parse_number(rest[2], sec_b) ||
            !valid_index(sec_a) || !valid_index(sec_b)) {
          std::fprintf(stderr, "%s:%zu: malformed section addresses '%s %s'\n",
                       path.c_str(), line_no, rest[1].c_str(), rest[2].c_str());
          return 1;
        }
        couple.sec_a = static_cast<std::size_t>(sec_a);
        couple.sec_b = static_cast<std::size_t>(sec_b);
      }
      // A line with zero capacitance *and* zero k couples nothing — reject
      // it here, because the zero fields legitimately skip the couple_*
      // calls (and with them the per-slot validation that would otherwise
      // have flagged the typo).
      if (couple.cc_ff == 0.0 && couple.k == 0.0) {
        std::fprintf(stderr,
                     "%s:%zu: couple line carries no coupling element (cc_ff and k "
                     "both zero)\n",
                     path.c_str(), line_no);
        return 1;
      }
      deck.couples.push_back(std::move(couple));
      continue;
    }
    if (head == "xnet") {
      DeckNet net;
      net.explicit_net = true;
      if (!(fields >> net.label) || !next_number(fields, net.driver_size) ||
          !next_number(fields, net.slew_ps) || !at_line_end(fields)) {
        std::fprintf(stderr, "%s:%zu: expected 'xnet label size slew_ps'\n",
                     path.c_str(), line_no);
        return 1;
      }
      if (net_named(net.label) != nullptr) {
        std::fprintf(stderr,
                     "%s:%zu: duplicate net label '%s' (labels identify result "
                     "slots and must be unique)\n",
                     path.c_str(), line_no, net.label.c_str());
        return 2;
      }
      deck.nets.push_back(std::move(net));
      continue;
    }
    if (head == "xsec" || head == "xload") {
      std::string label, path_text;
      if (!(fields >> label >> path_text)) {
        std::fprintf(stderr, "%s:%zu: expected '%s label path ...'\n", path.c_str(),
                     line_no, head.c_str());
        return 1;
      }
      DeckNet* net = net_named(label);
      if (net == nullptr || !net->explicit_net) {
        std::fprintf(stderr, "%s:%zu: %s references %s net '%s'\n", path.c_str(),
                     line_no, head.c_str(),
                     net == nullptr ? "unknown" : "non-explicit", label.c_str());
        return 1;
      }
      std::vector<std::size_t> branch_path;
      if (!parse_branch_path(path_text, branch_path)) {
        std::fprintf(stderr, "%s:%zu: malformed branch path '%s'\n", path.c_str(),
                     line_no, path_text.c_str());
        return 1;
      }
      if (head == "xload") {
        DeckLoad load;
        load.path = std::move(branch_path);
        if (!next_number(fields, load.cload_ff) || !at_line_end(fields)) {
          std::fprintf(stderr, "%s:%zu: expected 'xload label path cload_ff'\n",
                       path.c_str(), line_no);
          return 1;
        }
        net->loads.push_back(std::move(load));
      } else {
        DeckSection section;
        section.path = std::move(branch_path);
        if (!next_number(fields, section.r_ohm) || !next_number(fields, section.l_nh) ||
            !next_number(fields, section.c_ff)) {
          std::fprintf(stderr,
                       "%s:%zu: expected 'xsec label path r_ohm l_nh c_ff [lumped]'\n",
                       path.c_str(), line_no);
          return 1;
        }
        if (std::string flag; fields >> flag) {
          if (flag != "lumped" || !at_line_end(fields)) {
            std::fprintf(stderr, "%s:%zu: unknown section flag '%s'\n", path.c_str(),
                         line_no, flag.c_str());
            return 1;
          }
          section.lumped = true;
        }
        net->sections.push_back(std::move(section));
      }
      continue;
    }
    if (head == "aggressor") {
      std::string label, mode;
      if (!(fields >> label >> mode) ||
          (mode != "rise" && mode != "fall" && mode != "quiet")) {
        std::fprintf(stderr, "%s:%zu: expected 'aggressor net rise|fall|quiet'\n",
                     path.c_str(), line_no);
        return 1;
      }
      if (!deck.aggressors.emplace(label, mode).second) {
        std::fprintf(stderr,
                     "%s:%zu: net '%s' already has an aggressor directive\n",
                     path.c_str(), line_no, label.c_str());
        return 1;
      }
      continue;
    }

    DeckNet net;
    net.label = std::move(head);
    if (!(fields >> net.driver_size >> net.slew_ps >> net.length_mm >>
          net.width_um >> net.cload_ff)) {
      std::fprintf(stderr, "%s:%zu: expected 'label size slew_ps length_mm "
                           "width_um cload_ff'\n",
                   path.c_str(), line_no);
      return 1;
    }
    for (const DeckNet& seen : deck.nets) {
      if (seen.label == net.label) {
        std::fprintf(stderr,
                     "%s:%zu: duplicate net label '%s' (labels identify result "
                     "slots and must be unique)\n",
                     path.c_str(), line_no, net.label.c_str());
        return 2;
      }
    }
    deck.nets.push_back(std::move(net));
  }
  return 0;
}

std::size_t net_index(const Deck& deck, const std::string& label) {
  for (std::size_t k = 0; k < deck.nets.size(); ++k) {
    if (deck.nets[k].label == label) return k;
  }
  return deck.nets.size();
}

// Connected components of the `couple` graph: component_of[i] is the group
// id of deck net i, or npos for plain (uncoupled) nets.
std::vector<std::size_t> coupled_components(const Deck& deck) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent(deck.nets.size());
  for (std::size_t k = 0; k < parent.size(); ++k) parent[k] = k;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::vector<bool> coupled(deck.nets.size(), false);
  for (const DeckCouple& c : deck.couples) {
    const std::size_t a = net_index(deck, c.a);
    const std::size_t b = net_index(deck, c.b);
    parent[find(a)] = find(b);
    coupled[a] = coupled[b] = true;
  }
  std::vector<std::size_t> component(deck.nets.size(), npos);
  for (std::size_t k = 0; k < deck.nets.size(); ++k) {
    if (coupled[k]) component[k] = find(k);
  }
  return component;
}

core::AggressorSwitching switching_from(const std::string& mode) {
  if (mode == "rise") return core::AggressorSwitching::same_direction;
  if (mode == "fall") return core::AggressorSwitching::opposite;
  return core::AggressorSwitching::quiet;
}

// Unlike the bench-side helper (identifier-like inputs only), CLI strings
// come from user decks and exception messages, so control bytes must become
// \u escapes for the document to stay valid JSON.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(static_cast<char>(c));
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

const char* kind_name(core::ModelKind kind) {
  switch (kind) {
    case core::ModelKind::one_ramp:
      return "one-ramp";
    case core::ModelKind::two_ramp:
      return "two-ramp";
    case core::ModelKind::three_ramp:
      break;
  }
  return "three-ramp";
}

// --lint --json document: one record per result slot, each diagnostic as a
// structured object.  "failed" counts slots with at least one error-severity
// finding (the exit-code contract: 0 when failed == 0, else 2).
void print_lint_json(const CliOptions& cli, const std::vector<DeckNet>& slots,
                     const std::vector<lint::Report>& reports,
                     std::size_t failed) {
  std::printf("{\n  \"deck\": \"%s\",\n  \"lint\": true,\n  \"nets\": [",
              json_escape(cli.deck_path).c_str());
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const lint::Report& report = reports[k];
    std::printf("%s\n    {\"label\": \"%s\", \"ok\": %s, \"errors\": %zu, "
                "\"warnings\": %zu, \"diagnostics\": [",
                k == 0 ? "" : ",", json_escape(slots[k].label).c_str(),
                report.clean() ? "true" : "false",
                report.count(lint::Severity::error),
                report.count(lint::Severity::warn));
    for (std::size_t d = 0; d < report.diagnostics.size(); ++d) {
      const lint::Diagnostic& diag = report.diagnostics[d];
      std::printf("%s\n      {\"code\": \"%s\", \"severity\": \"%s\", "
                  "\"family\": \"%s\", \"path\": \"%s\", \"message\": \"%s\", "
                  "\"hint\": \"%s\"}",
                  d == 0 ? "" : ",", lint::to_string(diag.code),
                  lint::to_string(diag.severity), lint::family(diag.code),
                  json_escape(diag.path).c_str(),
                  json_escape(diag.message).c_str(),
                  json_escape(diag.hint).c_str());
    }
    std::printf("%s]}", report.diagnostics.empty() ? "" : "\n    ");
  }
  std::printf("\n  ],\n  \"failed\": %zu\n}\n", failed);
}

void print_json(const CliOptions& cli, const std::vector<DeckNet>& slots,
                const std::vector<std::string>& build_errors,
                const std::vector<api::Outcome<api::Response>>& results,
                std::size_t failed) {
  std::printf("{\n  \"deck\": \"%s\",\n  \"reference\": %s,\n  \"nets\": [",
              json_escape(cli.deck_path).c_str(), cli.reference ? "true" : "false");
  for (std::size_t k = 0; k < results.size(); ++k) {
    std::printf("%s\n    {\"label\": \"%s\", ", k == 0 ? "" : ",",
                json_escape(slots[k].label).c_str());
    if (!results[k].ok()) {
      const api::ErrorInfo& e = results[k].error();
      const std::string& message =
          build_errors[k].empty() ? e.message : build_errors[k];
      std::printf("\"ok\": false, \"error_code\": \"%s\", "
                  "\"error\": {\"code\": \"%s\", \"message\": \"%s\"}}",
                  api::to_string(e.code), api::to_string(e.code),
                  json_escape(message).c_str());
      continue;
    }
    const api::Response& r = results[k].value();
    std::printf("\"ok\": true, \"model\": \"%s\", \"fidelity\": \"%s\", "
                "\"degraded\": %s, \"delay_ps\": %.4f, \"slew_ps\": %.4f",
                kind_name(r.model.kind), api::to_string(r.fidelity),
                r.degraded ? "true" : "false", r.model_near.delay / ps,
                r.model_near.slew / ps);
    if (cli.tier != tier::TierPolicy::reference) {
      std::printf(", \"tier\": \"%s\", \"tier_escalations\": %zu",
                  tier::to_string(r.tier), r.tier_escalations);
      if (r.has_noise_bound) {
        std::printf(", \"noise_bound_mv\": %.4f", r.noise_bound / 1e-3);
      }
    }
    if (r.has_coupling) {
      std::printf(", \"coupled\": true, \"delay_pushout_model_ps\": %.4f",
                  r.delay_pushout_model / ps);
    }
    if (r.has_solver) {
      std::printf(", \"solver\": \"%s\"", sim::to_string(r.solver));
    }
    if (r.has_model_far) {
      std::printf(", \"far_delay_ps\": %.4f, \"far_slew_ps\": %.4f",
                  r.model_far.delay / ps, r.model_far.slew / ps);
    }
    if (r.has_reference) {
      std::printf(", \"ref_delay_ps\": %.4f, \"ref_slew_ps\": %.4f",
                  r.ref_near.delay / ps, r.ref_near.slew / ps);
      if (r.has_coupling) {
        std::printf(", \"delay_pushout_ps\": %.4f, \"peak_noise_mv\": %.4f",
                    r.delay_pushout / ps, r.peak_noise / 1e-3);
      }
    }
    std::printf("}");
  }
  std::printf("\n  ],\n  \"failed\": %zu", failed);
  if (cli.tier != tier::TierPolicy::reference) {
    std::size_t served[3] = {0, 0, 0};
    std::size_t escalations = 0;
    for (const api::Outcome<api::Response>& outcome : results) {
      if (!outcome.ok()) continue;
      ++served[static_cast<std::size_t>(outcome.value().tier)];
      escalations += outcome.value().tier_escalations;
    }
    std::printf(",\n  \"tier_policy\": \"%s\",\n  \"tiers\": "
                "{\"a\": %zu, \"b\": %zu, \"c\": %zu, \"escalations\": %zu}",
                tier::to_string(cli.tier),
                served[static_cast<std::size_t>(tier::Tier::analytical)],
                served[static_cast<std::size_t>(tier::Tier::ceff)],
                served[static_cast<std::size_t>(tier::Tier::reference)],
                escalations);
  }
  std::printf("\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, cli)) {
    usage(argv[0]);
    return 1;
  }

  Deck deck;
  if (const int status = read_deck(cli.deck_path, deck); status != 0) return status;
  if (deck.nets.empty()) {
    std::fprintf(stderr, "deck %s holds no nets\n", cli.deck_path.c_str());
    return 1;
  }
  for (const DeckCouple& c : deck.couples) {
    for (const std::string& label : {c.a, c.b}) {
      if (net_index(deck, label) == deck.nets.size()) {
        std::fprintf(stderr, "deck %s: couple references unknown net '%s'\n",
                     cli.deck_path.c_str(), label.c_str());
        return 1;
      }
    }
  }
  const std::vector<std::size_t> component = coupled_components(deck);
  for (const auto& [label, mode] : deck.aggressors) {
    const std::size_t index = net_index(deck, label);
    if (index == deck.nets.size()) {
      std::fprintf(stderr, "deck %s: aggressor references unknown net '%s'\n",
                   cli.deck_path.c_str(), label.c_str());
      return 1;
    }
    if (component[index] == static_cast<std::size_t>(-1)) {
      std::fprintf(stderr, "deck %s: aggressor '%s' is not coupled to any net\n",
                   cli.deck_path.c_str(), label.c_str());
      return 1;
    }
  }
  // Every coupled group needs at least one victim, or its nets would be
  // silently dropped from the results.
  for (std::size_t k = 0; k < deck.nets.size(); ++k) {
    if (component[k] == static_cast<std::size_t>(-1)) continue;
    bool has_victim = false;
    for (std::size_t m = 0; m < deck.nets.size(); ++m) {
      if (component[m] == component[k] &&
          deck.aggressors.count(deck.nets[m].label) == 0) {
        has_victim = true;
        break;
      }
    }
    if (!has_victim) {
      std::fprintf(stderr,
                   "deck %s: every net coupled to '%s' is marked aggressor — the "
                   "group has no victim to report\n",
                   cli.deck_path.c_str(), deck.nets[k].label.c_str());
      return 1;
    }
  }

  // In JSON mode stdout carries only the document.
  FILE* info = cli.json ? stderr : stdout;

  api::Engine engine{tech::Technology::cmos180()};
  if (!cli.library_path.empty()) {
    try {
      if (engine.load_library(cli.library_path)) {
        std::fprintf(info, "# loaded %zu cell(s) from %s\n", engine.library().size(),
                     cli.library_path.c_str());
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "# ignoring unreadable library %s: %s\n",
                   cli.library_path.c_str(), e.what());
    }
  }

  api::BatchOptions options;
  options.n_threads = cli.n_threads;
  options.batch_scenarios = cli.batch_scenarios;
  if (cli.small_grid) {
    options.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
    options.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};
  }

  const tech::WireModel wires;
  auto build_net = [&](const DeckNet& n) -> net::Net {
    if (!n.explicit_net) {
      return tech::line_net(wires.extract({n.length_mm * mm, n.width_um * um}),
                            n.cload_ff * ff);
    }
    // Explicit form: assemble the branch tree the xsec/xload paths describe
    // (branches materialize on first reference; net::Net validation rejects
    // gaps and empty branches with messages naming the path).
    net::Branch root;
    auto branch_at = [&root](const std::vector<std::size_t>& path) -> net::Branch& {
      net::Branch* branch = &root;
      for (std::size_t index : path) {
        if (branch->children.size() <= index) branch->children.resize(index + 1);
        branch = &branch->children[index];
      }
      return *branch;
    };
    for (const DeckSection& s : n.sections) {
      branch_at(s.path).sections.push_back(
          {s.r_ohm, s.l_nh * nh, s.c_ff * ff,
           s.lumped ? net::SectionKind::lumped : net::SectionKind::distributed});
    }
    for (const DeckLoad& l : n.loads) {
      branch_at(l.path).c_load += l.cload_ff * ff;
    }
    return net::Net(std::move(root));
  };

  // One result slot per plain net and per coupled victim, in deck order.
  // Invalid geometry (e.g. a zero-length net) must not abort the batch: the
  // construction error (which names the offending element) is kept per slot
  // and reported in place of the engine's generic empty-net rejection.
  std::vector<DeckNet> slots;
  std::vector<api::Request> requests;
  std::vector<std::string> build_errors;
  std::vector<std::optional<lint::Diagnostic>> build_diags;
  for (std::size_t k = 0; k < deck.nets.size(); ++k) {
    const DeckNet& net = deck.nets[k];
    if (deck.aggressors.count(net.label) != 0) continue;  // shapes victims only
    api::Request r;
    r.label = net.label;
    r.cell_size = net.driver_size;
    r.input_slew = net.slew_ps * ps;
    r.reference = cli.reference;
    r.tier = cli.tier;
    r.far_end = false;
    // Model-only far-end replay; coupled victims stay near-end-only (the
    // replay is a single-net transient).
    r.far_end_replay = cli.far_end && component[k] == static_cast<std::size_t>(-1);
    r.solver = cli.solver;
    r.budget.wall_limit_s = cli.deadline_ms * 1e-3;
    r.budget.max_transient_steps = cli.max_steps;
    r.degrade.enabled = cli.degrade;
    if (cli.lint_screen) {
      // Arm the admission screen at warn severity with the deep passes on.
      // Error-grade structural breakage already failed net construction
      // above (invalid_request); what the screen adds is rejecting the
      // simulatable-but-suspicious slots before they cost a solve.
      r.lint.screen = true;
      r.lint.report = true;
      r.lint.fail_at = lint::Severity::warn;
      r.lint.checks = lint::Options{};  // conditioning + model passes on
    }
    std::string build_error;
    std::optional<lint::Diagnostic> build_diag;
    try {
      if (component[k] == static_cast<std::size_t>(-1)) {
        r.net = build_net(net);
      } else {
        // Assemble this victim's coupled group: every member of its
        // component in deck order, with the victim's own index tracked.
        net::CoupledGroup group;
        std::vector<std::size_t> members;
        for (std::size_t m = 0; m < deck.nets.size(); ++m) {
          if (component[m] != component[k]) continue;
          group.add_net(build_net(deck.nets[m]), deck.nets[m].label);
          members.push_back(m);
        }
        for (const DeckCouple& c : deck.couples) {
          const std::size_t a = net_index(deck, c.a);
          if (component[a] != component[k]) continue;
          const net::SectionRef ra{group.index_of(c.a), c.sec_a};
          const net::SectionRef rb{group.index_of(c.b), c.sec_b};
          // A zero field means this line carries only the other element.
          if (c.cc_ff != 0.0) group.couple_capacitance(ra, rb, c.cc_ff * ff);
          if (c.k != 0.0) group.couple_inductance(ra, rb, c.k);
        }
        for (std::size_t m : members) {
          const DeckNet& other = deck.nets[m];
          const auto mode = deck.aggressors.find(other.label);
          if (m == k || mode == deck.aggressors.end()) continue;
          r.aggressors.push_back({group.index_of(other.label), other.driver_size,
                                  other.slew_ps * ps, switching_from(mode->second)});
        }
        r.victim = group.index_of(net.label);
        r.group = std::move(group);
      }
    } catch (const lint::DiagnosticError& e) {
      // A validating constructor refused the slot: keep the structured
      // Diagnostic for --lint output as well as the message.
      build_error = e.what();
      build_diag = e.diagnostic();
    } catch (const Error& e) {
      build_error = e.what();
    }
    slots.push_back(net);
    requests.push_back(std::move(r));
    build_errors.push_back(std::move(build_error));
    build_diags.push_back(std::move(build_diag));
  }

  if (requests.empty()) {
    std::fprintf(stderr, "deck %s defines no result slots (every net is an "
                         "aggressor)\n",
                 cli.deck_path.c_str());
    return 1;
  }

  // Lint-only mode: run the full static pass (structural core plus the
  // conditioning and model families) per slot and exit — no engine run, no
  // characterization, no transient.  A slot whose net construction already
  // threw reports the refused Diagnostic (or an invalid_input record when
  // the failure happened outside the taxonomy, e.g. the wire-model geometry
  // checks).
  if (cli.lint) {
    std::vector<lint::Report> reports(requests.size());
    for (std::size_t k = 0; k < requests.size(); ++k) {
      if (build_diags[k].has_value()) {
        reports[k].diagnostics.push_back(*build_diags[k]);
      } else if (!build_errors[k].empty()) {
        reports[k].diagnostics.push_back(lint::make_diagnostic(
            lint::Code::invalid_input, "", build_errors[k],
            "fix the deck line the message names"));
      } else {
        lint::Options checks;  // deep passes on: conditioning + model
        checks.driver_resistance = lint::estimate_driver_resistance(
            engine.technology(), requests[k].cell_size);
        checks.input_slew = requests[k].input_slew;
        reports[k] = requests[k].coupled()
                         ? lint::lint_group(requests[k].group, checks)
                         : lint::lint_net(requests[k].net, checks);
      }
    }
    std::size_t lint_failed = 0;
    for (const lint::Report& report : reports) {
      if (!report.clean()) ++lint_failed;
    }
    if (cli.json) {
      print_lint_json(cli, slots, reports, lint_failed);
    } else {
      for (std::size_t k = 0; k < reports.size(); ++k) {
        const lint::Report& report = reports[k];
        std::printf("%-12s %zu error(s), %zu warning(s), %zu note(s)\n",
                    slots[k].label.c_str(), report.count(lint::Severity::error),
                    report.count(lint::Severity::warn),
                    report.count(lint::Severity::info));
        for (const lint::Diagnostic& d : report.diagnostics) {
          std::printf("    %s\n", lint::format(d).c_str());
        }
      }
      std::printf("# %zu slot(s), %zu failed lint\n", reports.size(), lint_failed);
    }
    return lint_failed == 0 ? 0 : 2;
  }

  const std::vector<api::Outcome<api::Response>> results =
      engine.run_batch(requests, options);

  std::size_t failed = 0;
  for (const api::Outcome<api::Response>& outcome : results) {
    if (!outcome.ok()) ++failed;
  }

  if (cli.json) {
    print_json(cli, slots, build_errors, results, failed);
  } else {
    if (cli.reference) {
      std::printf("%-12s %-9s %11s %11s %11s %11s\n", "net", "model", "delay [ps]",
                  "slew [ps]", "ref d [ps]", "ref s [ps]");
    } else {
      std::printf("%-12s %-9s %11s %11s\n", "net", "model", "delay [ps]",
                  "slew [ps]");
    }
    for (std::size_t k = 0; k < results.size(); ++k) {
      if (!results[k].ok()) {
        const api::ErrorInfo& e = results[k].error();
        const std::string& message =
            build_errors[k].empty() ? e.message : build_errors[k];
        std::printf("%-12s ERROR [%s]: %s\n", slots[k].label.c_str(),
                    api::to_string(e.code), message.c_str());
        continue;
      }
      const api::Response& r = results[k].value();
      if (cli.reference) {
        std::printf("%-12s %-9s %11.2f %11.2f %11.2f %11.2f\n", r.label.c_str(),
                    kind_name(r.model.kind), r.model_near.delay / ps,
                    r.model_near.slew / ps, r.ref_near.delay / ps,
                    r.ref_near.slew / ps);
      } else {
        std::printf("%-12s %-9s %11.2f %11.2f\n", r.label.c_str(),
                    kind_name(r.model.kind), r.model_near.delay / ps,
                    r.model_near.slew / ps);
      }
      if (r.degraded) {
        std::printf("#   %s: degraded to %s after %zu abandoned attempt(s)\n",
                    r.label.c_str(), api::to_string(r.fidelity),
                    r.attempts.size());
      }
      if (r.has_model_far) {
        std::printf("#   %s: far end (replay) delay %.2f ps, slew %.2f ps\n",
                    r.label.c_str(), r.model_far.delay / ps,
                    r.model_far.slew / ps);
      }
      if (r.has_coupling) {
        std::printf("#   %s: coupled victim, model pushout %+.2f ps",
                    r.label.c_str(), r.delay_pushout_model / ps);
        if (r.has_reference) {
          std::printf(", sim pushout %+.2f ps, peak noise %.1f mV",
                      r.delay_pushout / ps, r.peak_noise / 1e-3);
        }
        std::printf("\n");
      }
    }
    if (cli.tier != tier::TierPolicy::reference) {
      std::size_t served[3] = {0, 0, 0};
      std::size_t escalations = 0;
      for (const api::Outcome<api::Response>& outcome : results) {
        if (!outcome.ok()) continue;
        ++served[static_cast<std::size_t>(outcome.value().tier)];
        escalations += outcome.value().tier_escalations;
      }
      std::printf("# tiers served (%s): a=%zu b=%zu c=%zu, %zu escalation(s)\n",
                  tier::to_string(cli.tier),
                  served[static_cast<std::size_t>(tier::Tier::analytical)],
                  served[static_cast<std::size_t>(tier::Tier::ceff)],
                  served[static_cast<std::size_t>(tier::Tier::reference)],
                  escalations);
    }
    std::printf("# %zu net(s), %zu failed\n", results.size(), failed);
  }

  if (!cli.library_path.empty()) {
    engine.save_library(cli.library_path);
    std::fprintf(info, "# saved %zu cell(s) to %s\n", engine.library().size(),
                 cli.library_path.c_str());
  }
  return failed == 0 ? 0 : 2;
}
