// rlceff_cli — the service-shaped entry point: read a scenario deck, run it
// through api::Engine::run_batch, print per-net delay/slew.
//
// Deck format (plain text, '#' comments, one net per line):
//
//   # label  driver_size  slew_ps  length_mm  width_um  cload_ff
//   net0     100          100      5.0        1.6       20
//
// Geometry is turned into RLC parasitics by the built-in wire model (the
// same fit the paper benches use).  Failed nets are reported with their
// structured error code and do not abort the rest of the batch; the exit
// code is 0 when every net succeeded, 2 when any slot failed.
//
// Usage:
//   rlceff_cli [options] <deck-file>
//     --library <path>   load the cell cache from <path> before the run and
//                        save it back afterwards (repeated invocations skip
//                        re-characterization)
//     --grid small       use a small characterization grid (CI/smoke runs)
//     --reference        also run the transient reference and print errors
//     --threads <n>      sweep pool width (default: hardware concurrency)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/engine.h"
#include "tech/wire.h"
#include "util/units.h"

using namespace rlceff;
using namespace rlceff::units;

namespace {

struct CliOptions {
  std::string deck_path;
  std::string library_path;  // empty = no persistence
  bool small_grid = false;
  bool reference = false;
  unsigned n_threads = 0;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--library <path>] [--grid small|standard] "
               "[--reference] [--threads <n>] <deck-file>\n",
               argv0);
}

bool parse_args(int argc, char** argv, CliOptions& opt) {
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* { return k + 1 < argc ? argv[++k] : nullptr; };
    if (arg == "--library") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.library_path = v;
    } else if (arg == "--grid") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "small") == 0) {
        opt.small_grid = true;
      } else if (std::strcmp(v, "standard") != 0) {
        std::fprintf(stderr, "unknown grid '%s' (want small|standard)\n", v);
        return false;
      }
    } else if (arg == "--reference") {
      opt.reference = true;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opt.n_threads = static_cast<unsigned>(std::atoi(v));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else if (opt.deck_path.empty()) {
      opt.deck_path = arg;
    } else {
      std::fprintf(stderr, "more than one deck file given\n");
      return false;
    }
  }
  return !opt.deck_path.empty();
}

// One parsed deck line.  Net construction is deferred to request build time
// so a malformed geometry surfaces as a per-net Outcome failure, not a
// deck-parse abort.
struct DeckNet {
  std::string label;
  double driver_size = 0.0;
  double slew_ps = 0.0;
  double length_mm = 0.0;
  double width_um = 0.0;
  double cload_ff = 0.0;
};

bool read_deck(const std::string& path, std::vector<DeckNet>& nets) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "cannot open deck file: %s\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    DeckNet net;
    if (!(fields >> net.label)) continue;  // blank/comment-only line
    if (!(fields >> net.driver_size >> net.slew_ps >> net.length_mm >>
          net.width_um >> net.cload_ff)) {
      std::fprintf(stderr, "%s:%zu: expected 'label size slew_ps length_mm "
                           "width_um cload_ff'\n",
                   path.c_str(), line_no);
      return false;
    }
    nets.push_back(std::move(net));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, cli)) {
    usage(argv[0]);
    return 1;
  }

  std::vector<DeckNet> deck;
  if (!read_deck(cli.deck_path, deck)) return 1;
  if (deck.empty()) {
    std::fprintf(stderr, "deck %s holds no nets\n", cli.deck_path.c_str());
    return 1;
  }

  api::Engine engine{tech::Technology::cmos180()};
  if (!cli.library_path.empty()) {
    try {
      if (engine.load_library(cli.library_path)) {
        std::printf("# loaded %zu cell(s) from %s\n", engine.library().size(),
                    cli.library_path.c_str());
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "# ignoring unreadable library %s: %s\n",
                   cli.library_path.c_str(), e.what());
    }
  }

  api::BatchOptions options;
  options.n_threads = cli.n_threads;
  if (cli.small_grid) {
    options.grid.input_slews = {50 * ps, 100 * ps, 200 * ps};
    options.grid.loads = {50 * ff, 200 * ff, 500 * ff, 1 * pf, 2 * pf, 4 * pf};
  }

  const tech::WireModel wires;
  std::vector<api::Request> requests;
  // Invalid geometry (e.g. a zero-length net) must not abort the batch: the
  // construction error (which names the offending element) is kept per net
  // and reported in place of the engine's generic empty-net rejection.
  std::vector<std::string> build_errors(deck.size());
  for (std::size_t k = 0; k < deck.size(); ++k) {
    const DeckNet& net = deck[k];
    api::Request r;
    r.label = net.label;
    r.cell_size = net.driver_size;
    r.input_slew = net.slew_ps * ps;
    try {
      r.net = tech::line_net(wires.extract({net.length_mm * mm, net.width_um * um}),
                             net.cload_ff * ff);
    } catch (const Error& e) {
      build_errors[k] = e.what();
    }
    r.reference = cli.reference;
    r.far_end = false;
    requests.push_back(std::move(r));
  }

  const std::vector<api::Outcome<api::Response>> results =
      engine.run_batch(requests, options);

  if (cli.reference) {
    std::printf("%-12s %-9s %11s %11s %11s %11s\n", "net", "model", "delay [ps]",
                "slew [ps]", "ref d [ps]", "ref s [ps]");
  } else {
    std::printf("%-12s %-9s %11s %11s\n", "net", "model", "delay [ps]", "slew [ps]");
  }
  std::size_t failed = 0;
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (!results[k].ok()) {
      ++failed;
      const api::ErrorInfo& e = results[k].error();
      const std::string& message =
          build_errors[k].empty() ? e.message : build_errors[k];
      std::printf("%-12s ERROR [%s]: %s\n", deck[k].label.c_str(),
                  api::to_string(e.code), message.c_str());
      continue;
    }
    const api::Response& r = results[k].value();
    const char* kind = r.model.kind == core::ModelKind::one_ramp ? "one-ramp"
                       : r.model.kind == core::ModelKind::two_ramp ? "two-ramp"
                                                                   : "three-ramp";
    if (cli.reference) {
      std::printf("%-12s %-9s %11.2f %11.2f %11.2f %11.2f\n", r.label.c_str(), kind,
                  r.model_near.delay / ps, r.model_near.slew / ps,
                  r.ref_near.delay / ps, r.ref_near.slew / ps);
    } else {
      std::printf("%-12s %-9s %11.2f %11.2f\n", r.label.c_str(), kind,
                  r.model_near.delay / ps, r.model_near.slew / ps);
    }
  }
  std::printf("# %zu net(s), %zu failed\n", results.size(), failed);

  if (!cli.library_path.empty()) {
    engine.save_library(cli.library_path);
    std::printf("# saved %zu cell(s) to %s\n", engine.library().size(),
                cli.library_path.c_str());
  }
  return failed == 0 ? 0 : 2;
}
